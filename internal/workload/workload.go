// Package workload provides the synthetic SPEC-like benchmark suite and the
// constant-size workload construction of the paper's evaluation (§IV-A2).
//
// Real SPEC CPU 2000/2006 binaries are unavailable here; each suite member
// is a generated program whose *personality* — phase structure, memory vs.
// compute balance, and relative length — matches the corresponding benchmark
// as characterized by the paper's Table 1 (switch counts and isolation
// runtimes). Benchmarks with a single behavior (459.GemsFDTD, 473.astar)
// produce zero phase transitions; heavy phase-alternators (183.equake,
// 401.bzip2, 171.swim, 172.mgrid) alternate compute- and memory-bound loops
// many times. Every program also carries a few thousand instructions of
// cold startup/utility code so static measurements (space overhead, Fig. 3)
// are taken against realistically sized binaries.
//
// Time scale: isolation runtimes follow the paper's Table 1 divided by
// ScaleDivisor (bwaves capped), under the scaled simulation clock of
// package amp; phase alternation counts follow the paper's switch counts
// under the same divisor. Uniform scaling preserves every relative quantity
// (see DESIGN.md §15).
//
// Beyond the fixed suite, the package provides the synthetic
// alternation-rate axis of the misprediction-cost breakdown (AltSpec,
// AltAnchorSpecs, Spec.Alternations + Spec.Materialize): constant-mix
// alternator fleets whose only varying property is how fast their phases
// alternate, with rates reported in alternations per billion estimated
// dynamic instructions (BenchSpec.AltRate).
package workload

import (
	"fmt"
	"math"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/isa"
	"phasetune/internal/prog"
	"phasetune/internal/reuse"
	"phasetune/internal/rng"
)

// ScaleDivisor divides the paper's Table 1 isolation runtimes (and switch
// counts) to keep simulations tractable.
const ScaleDivisor = 20

// PhaseKind is the behavioral class of one phase.
type PhaseKind int

const (
	// CPUPhase is integer-compute-bound: high IPC on every core, 1.5x
	// faster wall clock on fast cores.
	CPUPhase PhaseKind = iota
	// FPPhase is floating-point-compute-bound.
	FPPhase
	// MemPhase streams a working set overflowing the L2 into DRAM: higher
	// IPC on slow cores, little wall-clock gain from fast ones.
	MemPhase
	// MemLightPhase streams an L2-resident working set: memory-intensive by
	// instruction mix, but the on-die cache absorbs it, so IPC is core-type
	// invariant and the phase stays on fast cores.
	MemLightPhase
	// MixedPhase is in between; programs made only of it have one phase
	// type and never switch.
	MixedPhase
	// MemAntPhase is the memory antagonist: a DRAM streamer whose working
	// set overflows even a solo shared L2 by design, so its throughput is
	// governed almost entirely by its effective cache share — the phase
	// that makes shared-hierarchy contention visible. Its IPC profile is
	// flat across core types (memory latency is wall-clock), which is
	// exactly why unpriced placement herds antagonist fleets onto one
	// cache group: Algorithm 2 sends each one to cheap slow capacity and
	// nothing charges for the crowding.
	MemAntPhase
)

// String names the kind.
func (k PhaseKind) String() string {
	switch k {
	case CPUPhase:
		return "cpu"
	case FPPhase:
		return "fp"
	case MemPhase:
		return "mem"
	case MemLightPhase:
		return "memlight"
	case MixedPhase:
		return "mixed"
	case MemAntPhase:
		return "memant"
	}
	return fmt.Sprintf("phasekind(%d)", int(k))
}

// variants returns the block mixes of one phase-body iteration: a main
// block plus two alternates the body picks between at run time. All three
// share the kind's behavior (one phase type) while giving the binary static
// diversity.
func (k PhaseKind) variants() [3]prog.BlockMix {
	switch k {
	case CPUPhase:
		return [3]prog.BlockMix{
			{IntALU: 26, IntMul: 6, Load: 4, Store: 2, WorkingSetKB: 16, Locality: 0.99},
			{IntALU: 18, IntMul: 2, Load: 2, WorkingSetKB: 16, Locality: 0.99},
			{IntALU: 14, IntMul: 4, Store: 2, WorkingSetKB: 16, Locality: 0.99},
		}
	case FPPhase:
		return [3]prog.BlockMix{
			{FPAdd: 12, FPMul: 10, IntALU: 8, Load: 5, Store: 2, WorkingSetKB: 32, Locality: 0.99},
			{FPAdd: 8, FPMul: 6, IntALU: 4, Load: 3, WorkingSetKB: 32, Locality: 0.99},
			{FPAdd: 6, FPMul: 8, IntALU: 6, Store: 2, WorkingSetKB: 32, Locality: 0.99},
		}
	case MemPhase:
		return [3]prog.BlockMix{
			{Load: 16, Store: 8, IntALU: 8, WorkingSetKB: 3072, Locality: 0.94},
			{Load: 12, Store: 4, IntALU: 4, WorkingSetKB: 4096, Locality: 0.93},
			{Load: 10, Store: 6, IntALU: 6, WorkingSetKB: 2048, Locality: 0.95},
		}
	case MemLightPhase:
		return [3]prog.BlockMix{
			{Load: 16, Store: 8, IntALU: 8, WorkingSetKB: 512, Locality: 0.96},
			{Load: 12, Store: 4, IntALU: 4, WorkingSetKB: 384, Locality: 0.96},
			{Load: 10, Store: 6, IntALU: 6, WorkingSetKB: 640, Locality: 0.97},
		}
	case MixedPhase:
		return [3]prog.BlockMix{
			{IntALU: 14, FPAdd: 4, Load: 8, Store: 3, WorkingSetKB: 512, Locality: 0.97},
			{IntALU: 10, FPAdd: 2, Load: 6, Store: 2, WorkingSetKB: 512, Locality: 0.97},
			{IntALU: 8, FPAdd: 4, Load: 5, Store: 3, WorkingSetKB: 512, Locality: 0.97},
		}
	case MemAntPhase:
		// Working sets straddle the largest shared L2 (4 MiB) with lower
		// locality than MemPhase: halving the cache share roughly triples
		// the miss ratio, so co-location cost dominates core-type choice.
		return [3]prog.BlockMix{
			{Load: 16, Store: 8, IntALU: 8, WorkingSetKB: 3072, Locality: 0.92},
			{Load: 14, Store: 6, IntALU: 4, WorkingSetKB: 3584, Locality: 0.90},
			{Load: 12, Store: 8, IntALU: 6, WorkingSetKB: 2560, Locality: 0.91},
		}
	}
	return [3]prog.BlockMix{{IntALU: 10}, {IntALU: 8}, {IntALU: 6}}
}

// PhaseSpec is one phase of a benchmark.
type PhaseSpec struct {
	// Kind selects the behavior.
	Kind PhaseKind
	// Share is this phase's fraction of the benchmark's total cycles.
	Share float64
	// Helper places the phase body in a separate procedure called from the
	// loop, exercising the inter-procedural analysis.
	Helper bool
}

// BenchSpec describes one suite member.
type BenchSpec struct {
	// Name is the SPEC-style benchmark name.
	Name string
	// Personality optionally overrides the phase-table key: synthetic
	// benchmarks (the alternation-rate axis) share one personality under
	// many names. Empty means the Name is the key.
	Personality string
	// PaperRuntimeSec and PaperSwitches record the paper's Table 1 row this
	// personality models (0 switches means single-phase).
	PaperRuntimeSec float64
	PaperSwitches   int
	// TargetSec is the designed isolation runtime on a fast core under the
	// scaled clock.
	TargetSec float64
	// Alternations is the exact number of outer-loop repetitions of the
	// phase sequence; 1 means the phases run once, in order.
	Alternations int
	// StaticInstrs is the approximate cold startup/utility code size,
	// giving the binary realistic static bulk.
	StaticInstrs int
}

// Phases derives the per-iteration phase sequence from the personality
// table.
func (s BenchSpec) Phases() []PhaseSpec {
	key := s.Personality
	if key == "" {
		key = s.Name
	}
	return phaseTable[key]
}

// phaseTable maps benchmark names to phase sequences.
var phaseTable = map[string][]PhaseSpec{
	"401.bzip2":       {{Kind: CPUPhase, Share: 0.55}, {Kind: MemPhase, Share: 0.45}},
	"410.bwaves":      {{Kind: FPPhase, Share: 0.45}, {Kind: MemPhase, Share: 0.55, Helper: true}},
	"429.mcf":         {{Kind: MemPhase, Share: 0.55}, {Kind: CPUPhase, Share: 0.1}, {Kind: MemPhase, Share: 0.35}},
	"459.GemsFDTD":    {{Kind: MemPhase, Share: 1}},
	"470.lbm":         {{Kind: MemPhase, Share: 0.8}, {Kind: FPPhase, Share: 0.2}},
	"473.astar":       {{Kind: MixedPhase, Share: 1}},
	"188.ammp":        {{Kind: FPPhase, Share: 0.4}, {Kind: MemPhase, Share: 0.3}, {Kind: FPPhase, Share: 0.3}},
	"173.applu":       {{Kind: FPPhase, Share: 0.6}, {Kind: MemPhase, Share: 0.4, Helper: true}},
	"179.art":         {{Kind: MemPhase, Share: 0.8}, {Kind: CPUPhase, Share: 0.2}},
	"183.equake":      {{Kind: CPUPhase, Share: 0.5}, {Kind: MemPhase, Share: 0.5}},
	altPersonality:    {{Kind: CPUPhase, Share: 0.5}, {Kind: MemPhase, Share: 0.5}},
	altRevPersonality: {{Kind: MemPhase, Share: 0.5}, {Kind: CPUPhase, Share: 0.5}},
	altCPUPersonality: {{Kind: CPUPhase, Share: 0.9}, {Kind: MemPhase, Share: 0.1}},
	altMemPersonality: {{Kind: MemPhase, Share: 0.9}, {Kind: CPUPhase, Share: 0.1}},
	antPersonality:    {{Kind: MemAntPhase, Share: 0.9}, {Kind: CPUPhase, Share: 0.1}},
	antCPUPersonality: {{Kind: CPUPhase, Share: 0.9}, {Kind: MemLightPhase, Share: 0.1}},
	"164.gzip":        {{Kind: CPUPhase, Share: 0.7}, {Kind: MemPhase, Share: 0.3}},
	"181.mcf":         {{Kind: MemPhase, Share: 0.6}, {Kind: CPUPhase, Share: 0.15}, {Kind: MemPhase, Share: 0.25}},
	"172.mgrid":       {{Kind: FPPhase, Share: 0.5}, {Kind: MemPhase, Share: 0.5}},
	"171.swim":        {{Kind: MemPhase, Share: 0.45}, {Kind: FPPhase, Share: 0.55}},
	"175.vpr":         {{Kind: CPUPhase, Share: 0.35}, {Kind: MemPhase, Share: 0.35}, {Kind: CPUPhase, Share: 0.3}},
}

// Benchmark is a generated suite member.
type Benchmark struct {
	// Spec is the personality that generated the program.
	Spec BenchSpec
	// Prog is the generated program image.
	Prog *prog.Program
}

// Name returns the benchmark name.
func (b *Benchmark) Name() string { return b.Spec.Name }

// mixCycles estimates the isolation cycle cost of executing one block of
// mix m on a fast core with the full reference L2, mirroring the exec
// timing model (control-flow cost excluded).
func mixCycles(cm exec.CostModel, machine *amp.Machine, m prog.BlockMix) float64 {
	c := float64(m.IntALU)*cm.CPI[isa.IntALU] +
		float64(m.IntMul)*cm.CPI[isa.IntMul] +
		float64(m.IntDiv)*cm.CPI[isa.IntDiv] +
		float64(m.FPAdd)*cm.CPI[isa.FPAdd] +
		float64(m.FPMul)*cm.CPI[isa.FPMul] +
		float64(m.FPDiv)*cm.CPI[isa.FPDiv] +
		float64(m.Load)*cm.CPI[isa.Load] +
		float64(m.Store)*cm.CPI[isa.Store]
	mem := m.Load + m.Store
	if mem > 0 {
		par := exec.ParamsFor(cm, machine)[0]
		prof := reuse.Profile{WorkingSetKB: m.WorkingSetKB, Locality: m.Locality}
		l1miss := float64(mem) * prof.L1MissFraction()
		share := machine.L2s[0].SizeKB
		c += l1miss * (par.L2HitCycles + prof.MissRatio(share)*par.MemCycles)
	}
	return c
}

// emitPhaseBody emits one iteration of a phase body (main variant plus a
// random alternate) and returns its expected cycle cost.
func emitPhaseBody(pb *prog.ProcBuilder, kind PhaseKind, cm exec.CostModel, machine *amp.Machine) float64 {
	vs := kind.variants()
	pb.Straight(vs[0])
	pb.IfElse(0.5,
		func(pb *prog.ProcBuilder) { pb.Straight(vs[1]) },
		func(pb *prog.ProcBuilder) { pb.Straight(vs[2]) },
	)
	cost := mixCycles(cm, machine, vs[0]) +
		0.5*(mixCycles(cm, machine, vs[1])+mixCycles(cm, machine, vs[2])) +
		cm.CPI[isa.Branch] + 0.5*cm.CPI[isa.Jump]
	return cost
}

// emitStartup emits the cold startup/utility code: a chain of conditional
// straight blocks whose mixes are perturbed versions of the benchmark's own
// phase kinds (so single-behavior benchmarks stay single-typed), plus a few
// utility procedures called once.
func emitStartup(b *prog.Builder, spec BenchSpec, r *rng.Source) {
	phases := spec.Phases()
	kinds := make([]PhaseKind, 0, len(phases))
	for _, ph := range phases {
		kinds = append(kinds, ph.Kind)
	}
	perturb := func(m prog.BlockMix) prog.BlockMix {
		scale := func(n int) int {
			if n == 0 {
				return 0
			}
			v := n + r.Intn(n+1) - n/2 // n +/- n/2
			if v < 1 {
				v = 1
			}
			return v
		}
		m.IntALU = scale(m.IntALU)
		m.IntMul = scale(m.IntMul)
		m.FPAdd = scale(m.FPAdd)
		m.FPMul = scale(m.FPMul)
		m.Load = scale(m.Load)
		m.Store = scale(m.Store)
		return m
	}
	blockOf := func() prog.BlockMix {
		kind := kinds[r.Intn(len(kinds))]
		vs := kind.variants()
		return perturb(vs[r.Intn(3)])
	}

	// Utility procedures (~1/4 of the static budget).
	nUtil := 2 + r.Intn(3)
	utilBudget := spec.StaticInstrs / 4
	perUtil := utilBudget / nUtil
	utilNames := make([]string, nUtil)
	for u := 0; u < nUtil; u++ {
		name := fmt.Sprintf("util%d", u)
		utilNames[u] = name
		up := b.Proc(name)
		emitted := 0
		for emitted < perUtil {
			m := blockOf()
			up.Straight(m)
			emitted += m.Total()
			if r.Float64() < 0.4 && emitted < perUtil {
				m2 := blockOf()
				up.IfElse(0.5,
					func(pb *prog.ProcBuilder) { pb.Straight(m2) },
					nil,
				)
				emitted += m2.Total()
			}
		}
		up.Ret()
	}

	sp := b.Proc("startup")
	emitted := 0
	budget := spec.StaticInstrs - utilBudget
	for emitted < budget {
		m1, m2 := blockOf(), blockOf()
		sp.IfElse(0.5,
			func(pb *prog.ProcBuilder) { pb.Straight(m1) },
			func(pb *prog.ProcBuilder) { pb.Straight(m2) },
		)
		emitted += m1.Total() + m2.Total()
	}
	for _, name := range utilNames {
		sp.CallProc(name)
	}
	sp.Ret()
}

// Generate builds the benchmark program for a spec.
func Generate(spec BenchSpec, cm exec.CostModel, machine *amp.Machine) (*Benchmark, error) {
	if spec.TargetSec <= 0 {
		return nil, fmt.Errorf("workload: %s: non-positive target runtime", spec.Name)
	}
	phases := spec.Phases()
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: %s: unknown personality", spec.Name)
	}
	alts := spec.Alternations
	if alts < 1 {
		alts = 1
	}
	totalShare := 0.0
	for _, ph := range phases {
		totalShare += ph.Share
	}
	if totalShare <= 0 {
		return nil, fmt.Errorf("workload: %s: zero total phase share", spec.Name)
	}

	fastCPS := machine.Types[0].CyclesPerSec
	totalCycles := spec.TargetSec * fastCPS

	b := prog.NewBuilder(spec.Name)
	main := b.Proc("main")
	b.SetEntry("main")

	// Cold code first: startup chain and utility procedures.
	r := rng.New(hashName(spec.Name))
	if spec.StaticInstrs > 0 {
		emitStartup(b, spec, r)
	}

	// Helper procedures for Helper phases, with their per-call cost.
	helperCost := map[int]float64{}
	for pi, ph := range phases {
		if !ph.Helper {
			continue
		}
		name := fmt.Sprintf("phase%d_%s", pi, ph.Kind)
		hp := b.Proc(name)
		helperCost[pi] = emitPhaseBody(hp, ph.Kind, cm, machine) +
			cm.CPI[isa.Call] + cm.CPI[isa.Ret]
		hp.Ret()
	}

	if spec.StaticInstrs > 0 {
		main.CallProc("startup")
	}

	emitPhases := func(pb *prog.ProcBuilder, cyclesBudget float64) {
		for pi, ph := range phases {
			phaseCycles := cyclesBudget * ph.Share / totalShare
			if ph.Helper {
				perIter := helperCost[pi] + cm.CPI[isa.Branch]
				trips := math.Max(1, phaseCycles/perIter)
				name := fmt.Sprintf("phase%d_%s", pi, ph.Kind)
				pb.Loop(trips, func(pb *prog.ProcBuilder) {
					pb.CallProc(name)
				})
				continue
			}
			// Inline body: emit once into the loop, sizing the trip count
			// from the expected cost returned by the emitter.
			head := pb.Here()
			cost := emitPhaseBody(pb, ph.Kind, cm, machine) + cm.CPI[isa.Branch]
			trips := int(math.Max(1, phaseCycles/cost) + 0.5)
			pb.BranchCounted(head, trips)
		}
	}

	if alts > 1 {
		main.Loop(float64(alts), func(pb *prog.ProcBuilder) {
			// A small preamble block keeps the alternation loop's header
			// distinct from the first phase loop's header; natural loops
			// sharing a header would be merged by the CFG analysis and the
			// phase structure would disappear into one region.
			pb.Straight(prog.BlockMix{IntALU: 3})
			emitPhases(pb, totalCycles/float64(alts))
		})
	} else {
		emitPhases(main, totalCycles)
	}
	main.Ret()

	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", spec.Name, err)
	}
	return &Benchmark{Spec: spec, Prog: p}, nil
}

// hashName derives a stable per-benchmark seed.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// scale converts a paper Table 1 runtime to the scaled target, capping very
// long benchmarks so no single job dominates wall-clock time.
func scale(paperSec float64) float64 {
	s := paperSec / ScaleDivisor
	return math.Min(s, 300)
}

// Specs returns the 15 suite personalities modeled on the paper's Table 1.
// Alternation counts follow the paper's switch counts / (2 * ScaleDivisor):
// each alternation of a two-phase benchmark causes two switches.
func Specs() []BenchSpec {
	mk := func(name string, paperSec float64, paperSw, alts, static int) BenchSpec {
		return BenchSpec{
			Name:            name,
			PaperRuntimeSec: paperSec,
			PaperSwitches:   paperSw,
			TargetSec:       scale(paperSec),
			Alternations:    alts,
			StaticInstrs:    static,
		}
	}
	return []BenchSpec{
		mk("401.bzip2", 364, 4837, 120, 4000),
		mk("410.bwaves", 33636, 205, 6, 6000),
		mk("429.mcf", 872, 15, 1, 3000),
		mk("459.GemsFDTD", 3327, 0, 1, 8000),
		mk("470.lbm", 1123, 99, 3, 3000),
		mk("473.astar", 55, 0, 1, 3500),
		mk("188.ammp", 67, 3, 1, 5000),
		mk("173.applu", 3414, 205, 6, 5500),
		mk("179.art", 46, 3, 1, 2500),
		mk("183.equake", 62, 7715, 190, 3000),
		mk("164.gzip", 23, 3, 1, 2000),
		mk("181.mcf", 58, 6, 1, 2500),
		mk("172.mgrid", 172, 2005, 50, 3500),
		mk("171.swim", 5720, 3204, 80, 4500),
		mk("175.vpr", 46, 6, 1, 4000),
	}
}

// ---------------------------------------------------------------------------
// The synthetic alternation-rate axis.
//
// The misprediction-cost ablation (ROADMAP; experiments.Breakdown) needs to
// vary exactly one thing — how fast phases alternate — while holding the
// instruction mix constant. No real suite member can do that (each has its
// own mix and length), so the axis is a synthetic benchmark: the equake
// personality (a cpu/mem alternator, the paper's fastest phase-switcher)
// at a fixed target runtime, with Alternations swept geometrically. Rates
// are reported in alternations per billion estimated dynamic instructions
// (AltRate) so the experiment axis and the benchgen suite table share one
// unit.

// altPersonality keys the alternator's phase table entry: the same 50/50
// cpu/mem alternation as 183.equake. altRevPersonality is the identical
// mix with the phase order rotated (mem first), and altCPUPersonality /
// altMemPersonality are the stable single-phase anchors. Materialize
// interleaves all four across slots: a fleet of only alternators is
// degenerate — every task demands the same core type at the same instant
// (correlated herding) and every DRAM phase lands on one shared L2 — so
// the fleet mirrors the real suite's composition (stable jobs plus
// alternators, aggregate demand matching machine capacity) while only the
// alternation rate varies across the axis.
const (
	altPersonality    = "synthetic.alt"
	altRevPersonality = "synthetic.alt.rev"
	altCPUPersonality = "synthetic.cpu"
	altMemPersonality = "synthetic.mem"
	// antPersonality keys the memory antagonist: a MemAntPhase-dominant
	// job with a small compute phase (so it carries phase marks and every
	// policy, static included, can place it — same shape as the anchors).
	// It is deliberately NOT a Specs() suite member: the suite drives
	// BuildWorkload's random draws, and extending it would perturb every
	// existing seed's workload — the byte-identity contract the dist
	// fabric and the golden tests pin. Antagonist fleets materialize
	// through Spec.Fleet instead.
	antPersonality = "synthetic.antagonist"
	// antCPUPersonality keys the antagonist fleet's compute anchor: like
	// altCPUPersonality but with a *light* memory secondary, so its
	// image-level shared-cache signature stays unambiguously compute-side
	// (the alternation anchor's MemPhase secondary dominates the
	// ref-weighted working set and would classify it memory-bound).
	antCPUPersonality = "synthetic.antagonist.cpu"
)

// AltTargetSec is the alternator's designed isolation runtime on a fast
// core under the scaled clock. 20 s × 240k cycles/s = 4.8M cycles total,
// so one alternation at count A spans 4.8M/A cycles: the default axis
// (DefaultAltAlternations) walks phase lengths from well above the largest
// detection window to equake-like (~2k cycles) and beyond.
const AltTargetSec = 20

// AltSpec returns the synthetic constant-mix alternator personality at the
// given alternation count. Alternation counts are the axis; everything
// else — mix, target runtime, static bulk — is held fixed.
func AltSpec(alternations int) BenchSpec {
	return altSpec(alternations, false)
}

// AltSpecRev is AltSpec with the phase order rotated (mem first) — the
// antiphase partner Materialize interleaves across slots.
func AltSpecRev(alternations int) BenchSpec {
	return altSpec(alternations, true)
}

func altSpec(alternations int, rev bool) BenchSpec {
	if alternations < 1 {
		alternations = 1
	}
	name, personality := fmt.Sprintf("alt.x%d", alternations), altPersonality
	if rev {
		name, personality = name+".r", altRevPersonality
	}
	return BenchSpec{
		Name:         name,
		Personality:  personality,
		TargetSec:    AltTargetSec,
		Alternations: alternations,
		StaticInstrs: 3000,
	}
}

// AltAnchorSpecs returns the fleet's stable anchors: a compute-dominant
// job and a memory-dominant job at the alternator's target runtime, each
// with a small secondary phase (so they carry phase marks and every
// policy — static included — can place them, like the suite's
// low-alternation members) and a fixed low alternation count. They are
// rate-invariant — the constant half of every alternation-axis workload.
func AltAnchorSpecs() []BenchSpec {
	return []BenchSpec{
		{Name: "alt.cpu", Personality: altCPUPersonality, TargetSec: AltTargetSec,
			Alternations: 2, StaticInstrs: 3000},
		{Name: "alt.mem", Personality: altMemPersonality, TargetSec: AltTargetSec,
			Alternations: 2, StaticInstrs: 3000},
	}
}

// FleetAntagonist selects the memory-antagonist fleet axis
// (workload.Spec.Fleet): slots cycle [antagonist, cpu anchor], so half the
// fleet streams DRAM against a compute half that anchors fast-core demand.
// The composition makes shared-hierarchy contention the dominant effect —
// on the hex, two or more antagonists sharing one L2 group thrash it while
// another same-size group sits cold — which is the separation the
// contention-priced placement engine must produce and the unpriced engine
// demonstrably does not.
const FleetAntagonist = "antagonist"

// AntagonistSpecs returns the antagonist fleet's member specs in slot-cycle
// order: the DRAM antagonist and the stable compute anchor, both at the
// alternator target runtime with the anchors' low alternation count.
func AntagonistSpecs() []BenchSpec {
	return []BenchSpec{
		{Name: "ant.mem", Personality: antPersonality, TargetSec: AltTargetSec,
			Alternations: 2, StaticInstrs: 3000},
		{Name: "ant.cpu", Personality: antCPUPersonality, TargetSec: AltTargetSec,
			Alternations: 2, StaticInstrs: 3000},
	}
}

// DefaultAltAlternations is the default breakdown axis: six alternation
// counts spaced geometrically (×4). At AltTargetSec the phase period runs
// from ~600k cycles (trivially tracked by every window) down to ~590
// cycles (faster than 183.equake — inside any realistic window).
func DefaultAltAlternations() []int {
	return []int{4, 16, 64, 256, 1024, 4096}
}

// EstInstrs estimates a spec's dynamic phase-loop instruction count from
// the same per-iteration cost math Generate sizes trip counts with: for
// each phase, cycles-per-iteration prices the trip count and the expected
// instructions per iteration (main variant plus half of each alternate,
// plus the branch skeleton) scale it back to instructions. Cold startup
// code is excluded — thousands of instructions against millions. The
// estimate is what AltRate normalizes alternation counts by.
func (s BenchSpec) EstInstrs(cm exec.CostModel, machine *amp.Machine) float64 {
	phases := s.Phases()
	if len(phases) == 0 || s.TargetSec <= 0 {
		return 0
	}
	totalShare := 0.0
	for _, ph := range phases {
		totalShare += ph.Share
	}
	if totalShare <= 0 {
		return 0
	}
	totalCycles := s.TargetSec * machine.Types[0].CyclesPerSec
	instrs := 0.0
	for _, ph := range phases {
		vs := ph.Kind.variants()
		perIterCost := mixCycles(cm, machine, vs[0]) +
			0.5*(mixCycles(cm, machine, vs[1])+mixCycles(cm, machine, vs[2])) +
			cm.CPI[isa.Branch] + 0.5*cm.CPI[isa.Jump] +
			cm.CPI[isa.Branch] // loop back-branch
		perIterInstrs := float64(vs[0].Total()) +
			0.5*float64(vs[1].Total()+vs[2].Total()) +
			2.5 // if-else branch + loop branch + half a jump
		if ph.Helper {
			perIterCost += cm.CPI[isa.Call] + cm.CPI[isa.Ret]
			perIterInstrs += 2
		}
		phaseCycles := totalCycles * ph.Share / totalShare
		instrs += phaseCycles / perIterCost * perIterInstrs
	}
	return instrs
}

// AltRate returns the spec's phase-alternation rate in alternations per
// billion estimated dynamic instructions — the shared unit of the
// breakdown experiment's rate axis and the benchgen suite table. Zero for
// single-run (Alternations <= 1) or unestimable specs.
func (s BenchSpec) AltRate(cm exec.CostModel, machine *amp.Machine) float64 {
	if s.Alternations <= 1 {
		return 0
	}
	inst := s.EstInstrs(cm, machine)
	if inst <= 0 {
		return 0
	}
	return float64(s.Alternations) * 1e9 / inst
}

// Suite generates the full benchmark suite deterministically.
func Suite(cm exec.CostModel, machine *amp.Machine) ([]*Benchmark, error) {
	specs := Specs()
	out := make([]*Benchmark, 0, len(specs))
	for _, s := range specs {
		b, err := Generate(s, cm, machine)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Workload is the paper's constant-size workload: a fixed number of slots,
// each with its own queue of randomly selected benchmarks. Upon completion
// of a job, the next job in its slot's queue starts immediately (§IV-A2).
type Workload struct {
	// Slots holds one job queue per slot.
	Slots [][]*Benchmark
}

// BuildWorkload draws queueLen random benchmarks per slot. The same seed
// reproduces the same queues, so compared techniques run identical work —
// exactly the paper's protocol ("when comparing two techniques, the same
// queues were used for each experiment").
func BuildWorkload(suite []*Benchmark, slots, queueLen int, seed uint64) *Workload {
	r := rng.New(seed)
	w := &Workload{Slots: make([][]*Benchmark, slots)}
	for s := 0; s < slots; s++ {
		q := make([]*Benchmark, queueLen)
		for i := range q {
			q[i] = suite[r.Intn(len(suite))]
		}
		w.Slots[s] = q
	}
	return w
}

// NumSlots returns the slot count.
func (w *Workload) NumSlots() int { return len(w.Slots) }

// Spec describes a workload by its construction parameters instead of a
// built queue set. BuildWorkload is deterministic, so a Spec is the
// serializable identity of a workload: any process holding the same suite
// rebuilds bit-identical queues from it — which is what lets run
// specifications cross process boundaries in the distributed sweep fabric.
type Spec struct {
	// Slots is the constant workload size.
	Slots int `json:"slots"`
	// QueueLen is the per-slot queue length.
	QueueLen int `json:"queue_len"`
	// Seed drives the random benchmark draw.
	Seed uint64 `json:"seed"`
	// Alternations, when > 0, selects the synthetic alternation-rate axis
	// instead of the suite draw: slots cycle through the anchored
	// alternation fleet — the constant-mix alternator at this alternation
	// count, a stable cpu anchor, the antiphase alternator rotation, and a
	// stable mem anchor — so only the alternation rate varies across
	// compared specs while the fleet's composition stays fixed (see
	// Materialize). Specs carrying it must materialize through Materialize:
	// the fleet is generated against (cost, machine), which Build does not
	// have.
	Alternations int `json:"alternations,omitempty"`
	// Fleet, when non-empty, selects a named synthetic fleet instead of
	// the suite draw — currently FleetAntagonist, the memory-antagonist
	// composition behind the contention-pricing experiments. Like the
	// alternation axis, fleet specs must materialize through Materialize
	// (the fleet generates against cost and machine) and rebuild
	// bit-identically across processes.
	Fleet string `json:"fleet,omitempty"`
	// Arrivals, when non-nil, selects the open-system serving form instead
	// of a closed slot-queue workload: jobs from the serving fleet arrive
	// over time under the described process. Specs carrying it materialize
	// through MaterializeOpen (to a Stream, not a Workload); Slots and
	// QueueLen are unused. Seed drives both the arrival schedule and the
	// per-process branch seeds.
	Arrivals *ArrivalSpec `json:"arrivals,omitempty"`
}

// Build materializes the workload against a suite. It serves only the
// suite-draw form (Alternations == 0); alternation-axis specs go through
// Materialize.
func (s Spec) Build(suite []*Benchmark) *Workload {
	return BuildWorkload(suite, s.Slots, s.QueueLen, s.Seed)
}

// Materialize builds the workload, generating the synthetic alternation
// fleet when the spec carries an alternation-rate axis: slots cycle
// through [alternator, cpu anchor, reversed alternator, mem anchor], so
// half the fleet alternates (in antiphase rotations) against a stable
// half whose demand anchors the machine — the composition that keeps
// aggregate core-type demand near capacity at every rate (see
// altPersonality for why an alternator-only fleet is degenerate).
// Generation is a pure function of (cost, machine, alternations), so
// alternation specs rebuild bit-identically across processes exactly like
// suite draws do; Seed keeps driving per-process branch seeds through the
// run configuration.
func (s Spec) Materialize(suite []*Benchmark, cm exec.CostModel, machine *amp.Machine) (*Workload, error) {
	switch {
	case s.Fleet != "":
		if s.Fleet != FleetAntagonist {
			return nil, fmt.Errorf("workload: unknown fleet %q (want %q)", s.Fleet, FleetAntagonist)
		}
		return s.materializeFleet(AntagonistSpecs(), cm, machine)
	case s.Alternations > 0:
		anchors := AltAnchorSpecs()
		specs := []BenchSpec{AltSpec(s.Alternations), anchors[0], AltSpecRev(s.Alternations), anchors[1]}
		return s.materializeFleet(specs, cm, machine)
	}
	return s.Build(suite), nil
}

// materializeFleet generates the named fleet members and cycles them across
// the spec's slots, each slot queue repeating one benchmark — the shape both
// synthetic axes (alternation rate, antagonist contention) share.
func (s Spec) materializeFleet(specs []BenchSpec, cm exec.CostModel, machine *amp.Machine) (*Workload, error) {
	fleet := make([]*Benchmark, len(specs))
	for i, sp := range specs {
		b, err := Generate(sp, cm, machine)
		if err != nil {
			return nil, err
		}
		fleet[i] = b
	}
	w := &Workload{Slots: make([][]*Benchmark, s.Slots)}
	for i := range w.Slots {
		b := fleet[i%len(fleet)]
		q := make([]*Benchmark, s.QueueLen)
		for j := range q {
			q[j] = b
		}
		w.Slots[i] = q
	}
	return w, nil
}
