package workload

import (
	"math"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/cfg"
	"phasetune/internal/exec"
)

func suite(t *testing.T) []*Benchmark {
	t.Helper()
	s, err := Suite(exec.DefaultCostModel(), amp.Quad2Fast2Slow())
	if err != nil {
		t.Fatalf("Suite: %v", err)
	}
	return s
}

func TestSuiteHasAllTable1Benchmarks(t *testing.T) {
	s := suite(t)
	if len(s) != 15 {
		t.Fatalf("suite has %d benchmarks, want 15", len(s))
	}
	names := map[string]bool{}
	for _, b := range s {
		names[b.Name()] = true
	}
	for _, want := range []string{
		"401.bzip2", "410.bwaves", "429.mcf", "459.GemsFDTD", "470.lbm",
		"473.astar", "188.ammp", "173.applu", "179.art", "183.equake",
		"164.gzip", "181.mcf", "172.mgrid", "171.swim", "175.vpr",
	} {
		if !names[want] {
			t.Errorf("suite missing %s", want)
		}
	}
}

func TestSuiteProgramsValid(t *testing.T) {
	for _, b := range suite(t) {
		if err := b.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name(), err)
		}
		if _, err := cfg.BuildAll(b.Prog); err != nil {
			t.Errorf("%s: CFG: %v", b.Name(), err)
		}
	}
}

func TestIsolationRuntimeMatchesTarget(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cm := exec.DefaultCostModel()
	pars := exec.ParamsFor(cm, machine)
	for _, b := range suite(t) {
		img, err := exec.NewImage(b.Prog, nil, cm)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		p := exec.NewProcess(1, img, &cm, 42, nil)
		cycles := p.RunIsolated(&pars[0], 0, machine.L2s[0].SizeKB, 0)
		got := float64(cycles) / machine.Types[0].CyclesPerSec
		ratio := got / b.Spec.TargetSec
		if ratio < 0.9 || ratio > 1.15 {
			t.Errorf("%s: isolation %.1fs vs target %.1fs (ratio %.2f)", b.Name(), got, b.Spec.TargetSec, ratio)
		}
	}
}

func TestRelativeRuntimeOrdering(t *testing.T) {
	s := suite(t)
	byName := map[string]*Benchmark{}
	for _, b := range s {
		byName[b.Name()] = b
	}
	// The paper's longest benchmarks must stay the longest after scaling.
	if byName["410.bwaves"].Spec.TargetSec < byName["171.swim"].Spec.TargetSec {
		t.Error("bwaves not the longest")
	}
	if byName["164.gzip"].Spec.TargetSec > byName["429.mcf"].Spec.TargetSec {
		t.Error("gzip longer than mcf")
	}
}

func TestSinglePhaseBenchmarksHaveOnePhase(t *testing.T) {
	for _, b := range suite(t) {
		if b.Spec.PaperSwitches == 0 && len(b.Spec.Phases()) != 1 {
			t.Errorf("%s: paper shows 0 switches but personality has %d phases",
				b.Name(), len(b.Spec.Phases()))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cm := exec.DefaultCostModel()
	m := amp.Quad2Fast2Slow()
	specs := Specs()
	a, err := Generate(specs[0], cm, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(specs[0], cm, m)
	if err != nil {
		t.Fatal(err)
	}
	if a.Prog.NumInstrs() != b.Prog.NumInstrs() {
		t.Error("generation not deterministic")
	}
	for pi := range a.Prog.Procs {
		for ii := range a.Prog.Procs[pi].Instrs {
			if a.Prog.Procs[pi].Instrs[ii] != b.Prog.Procs[pi].Instrs[ii] {
				t.Fatalf("instruction %d/%d differs", pi, ii)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cm := exec.DefaultCostModel()
	m := amp.Quad2Fast2Slow()
	if _, err := Generate(BenchSpec{Name: "401.bzip2", TargetSec: 0}, cm, m); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := Generate(BenchSpec{Name: "nope", TargetSec: 1}, cm, m); err == nil {
		t.Error("unknown personality accepted")
	}
}

func TestStaticSizeRoughlyMatchesSpec(t *testing.T) {
	for _, b := range suite(t) {
		if b.Spec.StaticInstrs == 0 {
			continue
		}
		n := b.Prog.NumInstrs()
		if n < b.Spec.StaticInstrs || n > b.Spec.StaticInstrs*3 {
			t.Errorf("%s: %d static instrs for budget %d", b.Name(), n, b.Spec.StaticInstrs)
		}
	}
}

func TestBuildWorkloadShape(t *testing.T) {
	s := suite(t)
	w := BuildWorkload(s, 18, 32, 7)
	if w.NumSlots() != 18 {
		t.Fatalf("slots = %d", w.NumSlots())
	}
	for i, q := range w.Slots {
		if len(q) != 32 {
			t.Errorf("slot %d queue length %d", i, len(q))
		}
	}
}

func TestBuildWorkloadDeterministicAndSeedSensitive(t *testing.T) {
	s := suite(t)
	a := BuildWorkload(s, 6, 16, 9)
	b := BuildWorkload(s, 6, 16, 9)
	c := BuildWorkload(s, 6, 16, 10)
	same, diff := true, false
	for i := range a.Slots {
		for j := range a.Slots[i] {
			if a.Slots[i][j] != b.Slots[i][j] {
				same = false
			}
			if a.Slots[i][j] != c.Slots[i][j] {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same seed produced different queues")
	}
	if !diff {
		t.Error("different seeds produced identical queues")
	}
}

func TestWorkloadDrawsRoughlyUniform(t *testing.T) {
	s := suite(t)
	w := BuildWorkload(s, 40, 100, 3)
	counts := map[string]int{}
	total := 0
	for _, q := range w.Slots {
		for _, b := range q {
			counts[b.Name()]++
			total++
		}
	}
	want := float64(total) / float64(len(s))
	for n, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("%s drawn %d times, want about %.0f", n, c, want)
		}
	}
}

func TestAltSpecGeneratesAtEveryDefaultRate(t *testing.T) {
	cm := exec.DefaultCostModel()
	m := amp.Quad2Fast2Slow()
	for _, a := range DefaultAltAlternations() {
		sp := AltSpec(a)
		b, err := Generate(sp, cm, m)
		if err != nil {
			t.Fatalf("alt %d: %v", a, err)
		}
		if err := b.Prog.Validate(); err != nil {
			t.Errorf("alt %d: %v", a, err)
		}
		if got := sp.Alternations; got != a {
			t.Errorf("alt %d: spec alternations %d", a, got)
		}
		if len(sp.Phases()) != 2 {
			t.Errorf("alt %d: personality has %d phases, want 2", a, len(sp.Phases()))
		}
	}
}

func TestAltRateScalesGeometrically(t *testing.T) {
	// The axis holds everything but Alternations fixed, so the rate (per
	// billion estimated instructions) must scale linearly in the count.
	cm := exec.DefaultCostModel()
	m := amp.Quad2Fast2Slow()
	alts := DefaultAltAlternations()
	prev := 0.0
	for i, a := range alts {
		r := AltSpec(a).AltRate(cm, m)
		if r <= 0 {
			t.Fatalf("alt %d: non-positive rate %g", a, r)
		}
		if i > 0 {
			wantRatio := float64(a) / float64(alts[i-1])
			if got := r / prev; math.Abs(got-wantRatio) > 0.01*wantRatio {
				t.Errorf("rate ratio %d/%d = %.3f, want %.3f", a, alts[i-1], got, wantRatio)
			}
		}
		prev = r
	}
	// Single-phase specs carry no rate.
	if r := (BenchSpec{Name: "473.astar", TargetSec: 1, Alternations: 1}).AltRate(cm, m); r != 0 {
		t.Errorf("single-run spec rate = %g, want 0", r)
	}
}

func TestMaterializeAlternationAxis(t *testing.T) {
	cm := exec.DefaultCostModel()
	m := amp.Quad2Fast2Slow()
	s := suite(t)

	// Alternations == 0 behaves exactly like Build.
	plain := Spec{Slots: 4, QueueLen: 8, Seed: 9}
	w, err := plain.Materialize(s, cm, m)
	if err != nil {
		t.Fatal(err)
	}
	ref := plain.Build(s)
	for i := range ref.Slots {
		for j := range ref.Slots[i] {
			if w.Slots[i][j] != ref.Slots[i][j] {
				t.Fatalf("slot %d/%d differs from Build", i, j)
			}
		}
	}

	// Alternations > 0 yields the anchored alternation fleet, rebuilt
	// bit-identically across calls (the fabric's cross-process contract).
	alt := Spec{Slots: 3, QueueLen: 5, Seed: 9, Alternations: 64}
	a, err := alt.Materialize(s, cm, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := alt.Materialize(nil, cm, m) // suite unused on the alt path
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSlots() != 3 {
		t.Fatalf("slots = %d", a.NumSlots())
	}
	// Slots cycle alternator / cpu anchor / reversed alternator / mem
	// anchor; only the alternators carry the swept rate.
	fleet := []string{"alt.x64", "alt.cpu", "alt.x64.r", "alt.mem"}
	for i, q := range a.Slots {
		if len(q) != 5 {
			t.Fatalf("slot %d queue length %d", i, len(q))
		}
		want := fleet[i%len(fleet)]
		for j, bench := range q {
			if bench.Name() != want {
				t.Errorf("slot %d/%d holds %s, want %s", i, j, bench.Name(), want)
			}
			if bench.Prog.NumInstrs() != b.Slots[i][j].Prog.NumInstrs() {
				t.Errorf("slot %d/%d program differs across materializations", i, j)
			}
		}
	}
	// The two rotations are one mix: identical phase kinds, rotated order.
	fwd, rev := AltSpec(64).Phases(), AltSpecRev(64).Phases()
	if len(fwd) != 2 || len(rev) != 2 || fwd[0].Kind != rev[1].Kind || fwd[1].Kind != rev[0].Kind {
		t.Errorf("rotations are not phase-rotated copies: %v vs %v", fwd, rev)
	}
}

func TestPhaseKindStrings(t *testing.T) {
	for _, k := range []PhaseKind{CPUPhase, FPPhase, MemPhase, MemLightPhase, MixedPhase} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}

func TestVariantsShareBehavior(t *testing.T) {
	// All variants of a kind must agree on memory-boundedness so they land
	// in one cluster.
	for _, k := range []PhaseKind{CPUPhase, FPPhase, MemPhase, MemLightPhase, MixedPhase} {
		vs := k.variants()
		base := vs[0].Load+vs[0].Store > 0
		for i, v := range vs {
			if (v.Load+v.Store > 0) != base {
				t.Errorf("%s variant %d memory presence differs", k, i)
			}
		}
	}
}
