package workload

import (
	"strings"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
)

func TestMaterializeAntagonistFleet(t *testing.T) {
	cm := exec.DefaultCostModel()
	m := amp.Hex2Big2Medium2Little()

	spec := Spec{Slots: 5, QueueLen: 4, Seed: 7, Fleet: FleetAntagonist}
	a, err := spec.Materialize(nil, cm, m) // suite unused on the fleet path
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSlots() != 5 {
		t.Fatalf("slots = %d, want 5", a.NumSlots())
	}
	// Slots cycle antagonist / cpu anchor; each queue repeats one benchmark.
	fleet := []string{"ant.mem", "ant.cpu"}
	for i, q := range a.Slots {
		if len(q) != 4 {
			t.Fatalf("slot %d queue length %d, want 4", i, len(q))
		}
		want := fleet[i%len(fleet)]
		for j, bench := range q {
			if bench.Name() != want {
				t.Errorf("slot %d/%d holds %s, want %s", i, j, bench.Name(), want)
			}
		}
	}

	// The fabric's cross-process contract: rebuilt bit-identically.
	b, err := spec.Materialize(nil, cm, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Slots {
		for j := range a.Slots[i] {
			if a.Slots[i][j].Prog.NumInstrs() != b.Slots[i][j].Prog.NumInstrs() {
				t.Errorf("slot %d/%d program differs across materializations", i, j)
			}
		}
	}
}

func TestMaterializeUnknownFleetErrors(t *testing.T) {
	cm := exec.DefaultCostModel()
	m := amp.Quad2Fast2Slow()
	_, err := Spec{Slots: 2, QueueLen: 2, Fleet: "no-such-fleet"}.Materialize(nil, cm, m)
	if err == nil || !strings.Contains(err.Error(), "unknown fleet") {
		t.Fatalf("unknown fleet error = %v, want unknown-fleet", err)
	}
}

// TestAntagonistMemSignature pins what makes the antagonist an antagonist:
// its image-level shared-cache signature must classify as memory-bound on
// every machine the contention campaign runs (working set at or above half
// the largest L2 group, references reaching the shared cache), while the
// compute anchor it ships with must not.
func TestAntagonistMemSignature(t *testing.T) {
	cm := exec.DefaultCostModel()
	m := amp.Hex2Big2Medium2Little()
	specs := AntagonistSpecs()
	if len(specs) != 2 || specs[0].Name != "ant.mem" || specs[1].Name != "ant.cpu" {
		t.Fatalf("AntagonistSpecs = %v, want [ant.mem ant.cpu]", specs)
	}

	sig := func(bs BenchSpec) exec.MemSig {
		t.Helper()
		b, err := Generate(bs, cm, m)
		if err != nil {
			t.Fatal(err)
		}
		img, err := exec.NewImage(b.Prog, nil, cm)
		if err != nil {
			t.Fatal(err)
		}
		return img.MemSignature()
	}

	ant := sig(specs[0])
	if ant.L2RefsPerInstr <= 0 {
		t.Errorf("antagonist L2RefsPerInstr = %v, want > 0", ant.L2RefsPerInstr)
	}
	var maxL2 float64
	for _, g := range m.L2s {
		if g.SizeKB > maxL2 {
			maxL2 = g.SizeKB
		}
	}
	if ant.Profile.WorkingSetKB < maxL2/2 {
		t.Errorf("antagonist working set %v KB below mem-bound threshold %v",
			ant.Profile.WorkingSetKB, maxL2/2)
	}

	cpu := sig(specs[1])
	if cpu.Profile.WorkingSetKB >= maxL2/2 {
		t.Errorf("compute anchor working set %v KB classifies memory-bound", cpu.Profile.WorkingSetKB)
	}
}

// TestAntagonistNotInSuite pins the byte-identity guard: adding the
// antagonist personality to the random-draw suite would perturb every
// BuildWorkload draw and break cross-PR result identity, so it must stay a
// named fleet, not a suite member.
func TestAntagonistNotInSuite(t *testing.T) {
	for _, s := range Specs() {
		if s.Name == "ant.mem" || s.Personality == antPersonality {
			t.Fatalf("antagonist %q leaked into the suite draw", s.Name)
		}
	}
}
