package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/osched"
	"phasetune/internal/phase"
	"phasetune/internal/trace"
	"phasetune/internal/transition"
	"phasetune/internal/workload"
)

// The segment memo's contract is invisibility: a memoized run's Result is
// byte-identical to an unmemoized one, cold cache or warm, across every
// policy, machine, and system mode. These tests pin that contract the same
// way the dist wire format does — by canonical JSON bytes.

var memoModes = []Mode{Baseline, Tuned, Dynamic, Oracle, Hybrid}

func memoMachines() map[string]*amp.Machine {
	return map[string]*amp.Machine{
		"quad2f2s":  amp.Quad2Fast2Slow(),
		"three2f1s": amp.ThreeCore2Fast1Slow(),
		"hex2b2m2l": amp.Hex2Big2Medium2Little(),
	}
}

// memoConfig builds one run cell. Closed cells draw a slot-queue workload
// from the suite; open cells materialize a Poisson stream and enable the
// overcommit dispatcher the way serving experiments do.
func memoConfig(t testing.TB, machine *amp.Machine, mode Mode, open bool, seed uint64) RunConfig {
	t.Helper()
	cost := exec.DefaultCostModel()
	cfg := RunConfig{
		Machine:     machine,
		Cost:        &cost,
		DurationSec: 2,
		Mode:        mode,
		Params:      transition.Params{Technique: transition.Loop, MinSize: 45, PropagateThroughUntyped: true},
		TypingOpts:  phase.Options{K: 2, MinBlockInstrs: 5},
		Seed:        seed,
	}
	if open {
		stream, err := workload.Spec{
			Seed:     seed,
			Arrivals: &workload.ArrivalSpec{Kind: workload.Poisson, RatePerSec: 3, HorizonSec: 1.5},
		}.MaterializeOpen(cost, machine)
		if err != nil {
			t.Fatal(err)
		}
		sched := osched.DefaultConfig()
		sched.Overcommit.Enabled = true
		cfg.Stream = stream
		cfg.Sched = &sched
	} else {
		suite, err := workload.Suite(cost, machine)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workload = workload.Spec{Slots: 2, QueueLen: 2, Seed: seed}.Build(suite)
	}
	return cfg
}

// resultBytes canonically encodes a run result — the same identity the
// dist layer commits to its result files.
func resultBytes(t testing.TB, res *Result) []byte {
	t.Helper()
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func runBytes(t testing.TB, cfg RunConfig, memo *exec.SegmentMemo) []byte {
	t.Helper()
	cfg.Memo = memo
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return resultBytes(t, res)
}

// TestMemoGoldenIdentity is the tentpole guarantee: across all five
// policies, three machines, and closed/open system modes, a memoized run —
// cold cache and warm — produces a Result byte-identical to an unmemoized
// run. Ledger accounting is on everywhere so conserved cycle attribution
// is part of the pinned bytes.
func TestMemoGoldenIdentity(t *testing.T) {
	cache := NewImageCache()
	for mname, machine := range memoMachines() {
		for _, mode := range memoModes {
			for _, open := range []bool{false, true} {
				sys := "closed"
				if open {
					sys = "open"
				}
				t.Run(fmt.Sprintf("%s/%s/%s", mname, mode, sys), func(t *testing.T) {
					cfg := memoConfig(t, machine, mode, open, 11)
					cfg.Ledger = true
					cfg.Cache = cache

					plain := runBytes(t, cfg, nil)
					memo := exec.NewSegmentMemo(0)
					cold := runBytes(t, cfg, memo)
					warm := runBytes(t, cfg, memo)

					if !bytes.Equal(plain, cold) {
						t.Errorf("cold memoized result diverged from unmemoized run")
					}
					if !bytes.Equal(plain, warm) {
						t.Errorf("warm memoized result diverged from unmemoized run")
					}
					stats := memo.Stats()
					if stats.Hits == 0 {
						t.Errorf("warm rerun never hit the memo: %+v", stats)
					}
				})
			}
		}
	}
}

// TestMemoPropertyRandomConfigs drives random (policy, machine, arrivals,
// ledger, trace) combinations through memoized and unmemoized execution
// and requires byte-identical results — and, when tracing, byte-identical
// trace files, since memoization must be invisible to observers too.
func TestMemoPropertyRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	machines := []*amp.Machine{
		amp.Quad2Fast2Slow(),
		amp.ThreeCore2Fast1Slow(),
		amp.Hex2Big2Medium2Little(),
	}
	cache := NewImageCache()
	traceJSON := func(tr *trace.Tracer) []byte {
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for trial := 0; trial < 10; trial++ {
		mode := memoModes[rng.Intn(len(memoModes))]
		machine := machines[rng.Intn(len(machines))]
		open := rng.Intn(2) == 1
		ledger := rng.Intn(2) == 1
		traced := rng.Intn(2) == 1
		seed := uint64(rng.Int63())
		name := fmt.Sprintf("trial%d_%s_open%v_ledger%v_trace%v", trial, mode, open, ledger, traced)
		t.Run(name, func(t *testing.T) {
			cfg := memoConfig(t, machine, mode, open, seed)
			cfg.Ledger = ledger
			cfg.Cache = cache
			cfg.DurationSec = 1 + rng.Float64()

			var plainTrace, memoTrace *trace.Tracer
			if traced {
				plainTrace, memoTrace = trace.New(), trace.New()
			}

			plainCfg := cfg
			plainCfg.Trace = plainTrace
			plain := runBytes(t, plainCfg, nil)

			memoCfg := cfg
			memoCfg.Trace = memoTrace
			memo := exec.NewSegmentMemo(0)
			cold := runBytes(t, memoCfg, memo)

			if !bytes.Equal(plain, cold) {
				t.Errorf("memoized result diverged from unmemoized run")
			}
			if traced && !bytes.Equal(traceJSON(plainTrace), traceJSON(memoTrace)) {
				t.Errorf("memoized trace diverged from unmemoized trace")
			}
		})
	}
}

// TestMemoCacheReuse mirrors the image-cache tests: a cold memo records
// without hitting, an identical rerun replays from cache, and distinct
// specs neither collide nor leak each other's outcomes.
func TestMemoCacheReuse(t *testing.T) {
	cfg := memoConfig(t, amp.Quad2Fast2Slow(), Tuned, false, 5)
	// Memo lanes key on artifact identity, so cross-run reuse requires the
	// runs to draw their images from one shared cache (sessions, sweeps,
	// and dist workers all do).
	cfg.Cache = NewImageCache()
	memo := exec.NewSegmentMemo(0)

	cold := runBytes(t, cfg, memo)
	stats := memo.Stats()
	if stats.Hits != 0 {
		t.Errorf("cold run reported %d hits, want 0", stats.Hits)
	}
	if stats.Misses == 0 || stats.RecordedSteps == 0 {
		t.Errorf("cold run recorded nothing: %+v", stats)
	}

	warm := runBytes(t, cfg, memo)
	wstats := memo.Stats()
	if wstats.Hits == 0 || wstats.ReplayedSteps == 0 {
		t.Errorf("warm rerun replayed nothing: %+v", wstats)
	}
	if !bytes.Equal(cold, warm) {
		t.Error("warm rerun diverged from cold run")
	}

	// A different spec sharing the memo must produce its own result — the
	// cache may only serve outcomes keyed to identical execution state.
	other := memoConfig(t, amp.Quad2Fast2Slow(), Tuned, false, 6)
	otherMemoized := runBytes(t, other, memo)
	otherPlain := runBytes(t, other, nil)
	if !bytes.Equal(otherMemoized, otherPlain) {
		t.Error("cross-spec reuse perturbed the result")
	}
	if bytes.Equal(otherMemoized, cold) {
		t.Error("distinct seeds produced identical results; memo leaked outcomes across specs")
	}
}

// TestMemoSweepShared runs a grid through Sweep with one shared memo and
// requires the results to match a memo-free sequential sweep — the
// concurrent, shared-cache configuration the experiment campaign uses.
func TestMemoSweepShared(t *testing.T) {
	var grid []RunConfig
	for _, mode := range []Mode{Baseline, Tuned, Dynamic} {
		for seed := uint64(1); seed <= 2; seed++ {
			grid = append(grid, memoConfig(t, amp.Quad2Fast2Slow(), mode, false, seed))
		}
	}
	cache := NewImageCache()

	ctx := context.Background()
	plain, err := Sweep(ctx, grid, SweepOptions{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	memo := exec.NewSegmentMemo(0)
	memoized, err := Sweep(ctx, grid, SweepOptions{Workers: 4, Cache: cache, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	rerun, err := Sweep(ctx, grid, SweepOptions{Workers: 4, Cache: cache, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	for i := range grid {
		want := resultBytes(t, plain[i])
		if got := resultBytes(t, memoized[i]); !bytes.Equal(want, got) {
			t.Errorf("grid[%d]: concurrent memoized sweep diverged from sequential memo-free sweep", i)
		}
		if got := resultBytes(t, rerun[i]); !bytes.Equal(want, got) {
			t.Errorf("grid[%d]: warm memoized sweep diverged", i)
		}
	}
}
