// Package sim glues the whole stack together: it takes a benchmark suite, a
// machine, and a technique configuration, prepares program images (static
// analysis -> transition marking -> instrumentation), runs workloads under
// the simulated OS, and collects the statistics the experiments report.
//
// A Run is a pure function of its RunConfig: identical configurations give
// bit-identical results, which the comparison protocol depends on (baseline
// and tuned runs share workload queues and per-process branch seeds, as in
// the paper §IV-A2).
package sim

import (
	"context"
	"fmt"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/ledger"
	"phasetune/internal/metrics"
	"phasetune/internal/online"
	"phasetune/internal/osched"
	"phasetune/internal/phase"
	"phasetune/internal/place"
	"phasetune/internal/rng"
	"phasetune/internal/trace"
	"phasetune/internal/transition"
	"phasetune/internal/tuning"
	"phasetune/internal/workload"
)

// Mode selects how processes run.
type Mode int

const (
	// Baseline runs uninstrumented programs under the stock scheduler.
	Baseline Mode = iota
	// Tuned runs instrumented programs with the tuning runtime.
	Tuned
	// Overhead runs instrumented programs in all-cores mode (paper's time
	// overhead methodology, §IV-B2).
	Overhead
	// Dynamic runs uninstrumented programs under the online phase detector
	// (internal/online): periodic counter sampling, window classification,
	// and runtime reassignment — the mark-free competitor of §V.
	Dynamic
	// Oracle runs instrumented programs with perfect-knowledge placement:
	// every mark resolves to the statically computed Algorithm 2 choice with
	// zero monitoring. The upper bound of the static-vs-dynamic showdown.
	Oracle
	// Hybrid runs instrumented programs under the marks+windows hybrid
	// runtime (online.Hybrid): marks define phase boundaries, monitor
	// windows refresh the per-phase IPC estimates, and the shared placement
	// engine re-arbitrates at boundaries — the paper's §VI-B feedback
	// mechanism grown into a full policy.
	Hybrid
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case Tuned:
		return "tuned"
	case Overhead:
		return "overhead"
	case Dynamic:
		return "dynamic"
	case Oracle:
		return "oracle"
	case Hybrid:
		return "hybrid"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// RunConfig configures one simulation run.
type RunConfig struct {
	// Machine is the hardware; nil defaults to the paper's quad.
	Machine *amp.Machine
	// Cost is the shared cost model; zero value defaults.
	Cost *exec.CostModel
	// Sched configures the scheduler; nil defaults.
	Sched *osched.Config
	// Workload supplies the slot queues (closed-system runs). Exactly one
	// of Workload and Stream must be set.
	Workload *workload.Workload
	// Stream supplies an open-system arrival schedule instead of slot
	// queues: jobs from the serving fleet are admitted at their arrival
	// times via kernel timers, and each job's sojourn time is its
	// admission-to-completion interval. Open runs usually enable
	// Sched.Overcommit so demand beyond core supply time-multiplexes
	// fairly.
	Stream *workload.Stream
	// DurationSec is the experiment length in simulated seconds.
	DurationSec float64
	// Mode selects baseline/tuned/overhead.
	Mode Mode
	// Params is the marking technique (used when Mode != Baseline).
	Params transition.Params
	// Tuning configures the runtime (used when Mode == Tuned; Overhead
	// forces all-cores mode). Oracle mode reads only Tuning.Delta.
	Tuning tuning.Config
	// Online configures the dynamic detector (used when Mode == Dynamic or
	// Hybrid; zero fields take online.DefaultConfig values).
	Online online.Config
	// Placement parameterizes the shared placement engine's capacity
	// arbitration (spill band, hysteresis) for every engine-backed mode:
	// Dynamic, Hybrid, and Tuned with Tuning.Spill. Zero fields take
	// place.DefaultConfig values.
	Placement place.Config
	// TypingOpts configures static block typing.
	TypingOpts phase.Options
	// TypingError injects clustering error (Fig. 7); fraction in [0,1].
	TypingError float64
	// Seed drives workload process seeds and error injection.
	Seed uint64
	// Cache, when set, serves prepared images from the shared artifact
	// cache instead of re-running the static pipeline per run.
	Cache *ImageCache
	// Memo, when set, caches segment outcomes across runs so repeated
	// executions replay in O(1) (exec.SegmentMemo). Memoization is
	// invisible: a memoized run's Result is byte-identical to an
	// unmemoized one. Like Trace it is process-local and never crosses
	// the dist wire — workers attach their own memo.
	Memo *exec.SegmentMemo
	// Events, when set, receives per-run progress callbacks.
	Events Events
	// Trace, when set, records the run's event timeline (scheduler bursts,
	// placement decisions, online windows, mark boundaries, task spans).
	// Tracing never perturbs the simulation: a traced run's Result is
	// bit-identical to an untraced one. The tracer is not part of the dist
	// wire format; one tracer should observe one run at a time (concurrent
	// sweep runs sharing a tracer interleave nondeterministically).
	Trace *trace.Tracer
	// Ledger enables conserved cycle accounting: the run's Result carries a
	// Ledger decomposing every simulated core-picosecond into exhaustive
	// categories (Σ categories == cores × horizon, exact). Like tracing it
	// never perturbs the simulation: a ledgered run's Result is
	// bit-identical to a ledger-off run once the Ledger field is stripped.
	// The flag (not a pointer) crosses the dist wire in the EnvSpec.
	Ledger bool
	// CacheStats enables the kernel's per-cache-group residency map
	// (osched.CacheStats): the run's Result reports how memory-bound
	// tasks' busy time distributed over shared-L2 groups — the observable
	// the contention experiments separate fleets by. Like Ledger it never
	// perturbs the simulation; a stats-off Result encodes byte-identically
	// to builds without the feature. Crosses the dist wire per-spec
	// (dist.Spec.CacheStats).
	CacheStats bool
}

// Events holds optional per-run observation hooks. Hooks are invoked
// synchronously from the executing run's goroutine; when one Events value
// is shared by concurrent runs (a sweep), hooks from different runs fire
// concurrently and must be safe for concurrent use.
type Events struct {
	// OnImage fires once per distinct benchmark after its image is ready.
	// cached reports whether the image came out of the artifact cache
	// without running the static pipeline.
	OnImage func(benchmark string, stats ImageStats, cached bool)
	// OnProgress fires at every throughput sampling event with the current
	// simulated time.
	OnProgress func(simulatedSec float64)
}

// Result is the outcome of a run.
type Result struct {
	// Tasks holds one record per spawned job, in spawn order.
	Tasks []metrics.TaskStat
	// Samples is the throughput time series.
	Samples []metrics.ThroughputSample
	// TotalInstructions is the cumulative committed instruction count.
	TotalInstructions uint64
	// CounterDefers counts monitoring requests that found no free event set.
	CounterDefers uint64
	// Online holds the monitoring statistics of the runtime-detection
	// modes (nil unless the run used Mode Dynamic or Hybrid).
	Online *online.Stats
	// Images reports per-benchmark instrumentation statistics.
	Images map[string]ImageStats
	// DurationSec echoes the configured duration.
	DurationSec float64
	// PeakRunnable is the maximum number of simultaneously live tasks the
	// run reached. Closed runs peak at the slot count; open-system runs
	// exceeding the core count demonstrably exercised overcommit.
	PeakRunnable int
	// OvercommitSlices counts dispatch slices the proportional-share
	// dispatcher shortened (zero unless Sched.Overcommit is enabled and
	// demand exceeded capacity).
	OvercommitSlices uint64
	// Ledger is the run's conserved cycle accounting (nil unless
	// RunConfig.Ledger was set). The omitempty tag keeps a ledger-off
	// Result's canonical encoding — the bytes the dist fabric commits —
	// byte-identical to pre-ledger builds.
	Ledger *ledger.Ledger `json:"ledger,omitempty"`
	// CacheStats is the per-cache-group residency map (nil unless
	// RunConfig.CacheStats was set). The omitempty tag keeps a stats-off
	// Result's canonical encoding byte-identical to earlier builds.
	CacheStats *osched.CacheStats `json:"cache_stats,omitempty"`
}

// ImageStats summarizes one prepared image.
type ImageStats struct {
	// Marks is the static mark count.
	Marks int
	// SpaceOverhead is the fractional size increase.
	SpaceOverhead float64
	// OrigBytes and NewBytes are encoded sizes.
	OrigBytes, NewBytes int
	// EffectiveK is the number of phase types after clustering.
	EffectiveK int
}

// HookFactory builds the mark hook installed on each spawned process.
type HookFactory func(k *osched.Kernel, img *exec.Image) exec.MarkHook

// Run executes one full workload simulation.
func Run(cfg RunConfig) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: the simulation polls ctx while it
// advances and returns ctx.Err() if it fires mid-run.
func RunContext(ctx context.Context, cfg RunConfig) (*Result, error) {
	return RunWithHookContext(ctx, cfg, nil)
}

// RunWithHook is RunWithHookContext without cancellation.
func RunWithHook(cfg RunConfig, factory HookFactory) (*Result, error) {
	return RunWithHookContext(context.Background(), cfg, factory)
}

// RunWithHookContext is RunContext with a custom per-process hook factory.
// When factory is nil, Tuned and Overhead modes install the standard tuning
// runtime and Baseline installs no hook. A non-nil factory overrides the
// hook choice (used by the temporal-adaptation baseline from the
// related-work ablation).
func RunWithHookContext(ctx context.Context, cfg RunConfig, factory HookFactory) (*Result, error) {
	if cfg.Mode < Baseline || cfg.Mode > Hybrid {
		// An unknown mode must fail loudly: it would otherwise fall through
		// every hook switch and run as a silent baseline — a spec from a
		// newer wire generation would commit wrong-but-plausible bytes.
		return nil, fmt.Errorf("sim: unknown run mode %d", int(cfg.Mode))
	}
	machine := cfg.Machine
	if machine == nil {
		machine = amp.Quad2Fast2Slow()
	}
	cost := exec.DefaultCostModel()
	if cfg.Cost != nil {
		cost = *cfg.Cost
	}
	sched := osched.DefaultConfig()
	if cfg.Sched != nil {
		sched = *cfg.Sched
	}
	closed := cfg.Workload != nil && cfg.Workload.NumSlots() > 0
	open := cfg.Stream != nil
	switch {
	case closed && open:
		return nil, fmt.Errorf("sim: set exactly one of Workload and Stream, not both")
	case open && len(cfg.Stream.Arrivals) == 0:
		return nil, fmt.Errorf("sim: empty arrival stream")
	case !closed && !open:
		return nil, fmt.Errorf("sim: empty workload")
	}
	topts := cfg.TypingOpts
	if topts.K == 0 {
		topts.K = 2
	}
	if topts.MinBlockInstrs == 0 {
		topts.MinBlockInstrs = 5
	}

	// Prepare one image per distinct benchmark. With a cache, preparation
	// is a lookup after the first run that needs the same artifact.
	// Dynamic runs execute unmodified binaries — that is the point of the
	// online competitor.
	spec := ImageSpec{
		Baseline: cfg.Mode == Baseline || cfg.Mode == Dynamic,
		Params:   cfg.Params, Typing: topts,
		ErrFrac: cfg.TypingError, ErrSeed: cfg.Seed ^ 0x5eed,
	}
	if cfg.Mode == Oracle {
		// The oracle is perfect knowledge by definition: injected clustering
		// error never reaches its images (OracleAssignments re-derives clean
		// typing and requires the mark types to match it).
		spec.ErrFrac = 0
	}
	images := map[*workload.Benchmark]*exec.Image{}
	oracleMasks := map[*exec.Image]map[phase.Type]uint64{}
	// Contention-priced oracle runs register claims on one run-wide engine
	// (built from the same normalized placement config every other
	// engine-backed mode uses); the plain mask path stays untouched — and
	// byte-identical — when pricing is off.
	pcfg := cfg.Placement.Normalized()
	var oracleEng *place.Engine
	oracleDecs := map[*exec.Image]map[phase.Type]place.Decision{}
	if cfg.Mode == Oracle && pcfg.Contention != nil {
		oracleEng = place.NewEngine(machine, cfg.Tuning.Delta, pcfg)
		oracleEng.SetTracer(cfg.Trace)
	}
	res := &Result{Images: map[string]ImageStats{}, DurationSec: cfg.DurationSec}
	benchGroups := [][]*workload.Benchmark{}
	if closed {
		benchGroups = cfg.Workload.Slots
	} else {
		benchGroups = append(benchGroups, cfg.Stream.Fleet)
	}
	for _, slot := range benchGroups {
		for _, b := range slot {
			if _, ok := images[b]; ok {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			art, cached, err := prepare(cfg.Cache, b.Prog, spec, cost)
			if err != nil {
				return nil, fmt.Errorf("sim: %s: %w", b.Name(), err)
			}
			images[b] = art.Image
			res.Images[b.Name()] = art.Stats
			if cfg.Mode == Oracle {
				if oracleEng != nil {
					decs, err := online.OracleDecisions(oracleEng, art.Image, topts, cost, machine)
					if err != nil {
						return nil, fmt.Errorf("sim: oracle %s: %w", b.Name(), err)
					}
					oracleDecs[art.Image] = decs
				} else {
					masks, err := online.OracleAssignments(art.Image, topts, cost, machine, cfg.Tuning.Delta)
					if err != nil {
						return nil, fmt.Errorf("sim: oracle %s: %w", b.Name(), err)
					}
					oracleMasks[art.Image] = masks
				}
			}
			if cfg.Events.OnImage != nil {
				cfg.Events.OnImage(b.Name(), art.Stats, cached)
			}
		}
	}

	onlCfg := cfg.Online.Normalized()
	if cfg.Mode == Dynamic || cfg.Mode == Hybrid {
		sched.MonitorIntervalSec = onlCfg.TickSec
	}
	kernel, err := osched.NewKernel(machine, cost, sched)
	if err != nil {
		return nil, err
	}
	kernel.Trace = cfg.Trace
	kernel.Memo = cfg.Memo
	var col *ledger.Collector
	if cfg.Ledger {
		// Useful work is priced at the machine's fastest clock (smallest
		// per-cycle cost): the counterfactual of perfect placement.
		fastPs := kernel.Params()[0].PsPerCycle
		for _, p := range kernel.Params() {
			if p.PsPerCycle < fastPs {
				fastPs = p.PsPerCycle
			}
		}
		col = ledger.NewCollector(len(machine.Cores), fastPs)
		kernel.Ledger = col
	}
	if cfg.CacheStats {
		kernel.EnableCacheStats()
	}
	var monitor *online.Manager
	var hybrid *online.Hybrid
	switch cfg.Mode {
	case Dynamic:
		monitor = online.NewManager(onlCfg, pcfg, machine, kernel.Hardware)
		monitor.SetTracer(cfg.Trace)
		kernel.Monitor = monitor
	case Hybrid:
		hybrid = online.NewHybrid(onlCfg, pcfg, machine, kernel.Hardware)
		hybrid.SetTracer(cfg.Trace)
		kernel.Monitor = hybrid
	}
	if cfg.Events.OnProgress != nil {
		onProgress := cfg.Events.OnProgress
		kernel.OnSample = func(k *osched.Kernel, atPs int64) {
			onProgress(osched.PsToSec(atPs))
		}
	}

	tcfg := cfg.Tuning
	switch cfg.Mode {
	case Tuned:
		tcfg.Mode = tuning.ModeTune
	case Overhead:
		tcfg.Mode = tuning.ModeAllCores
	}
	// Capacity-aware static runs share one placement engine across every
	// tuner of the kernel — spill arbitration needs the machine-wide view.
	var spillEng *place.Engine
	if cfg.Mode == Tuned && tcfg.Spill {
		spillEng = place.NewEngine(machine, tcfg.Delta, pcfg)
		spillEng.SetTracer(cfg.Trace)
	}

	// The hook choice is per-process and mode-dependent; the closed slot
	// driver and the open arrival driver build hooks identically. With a
	// tracer attached, the chosen hook is wrapped so mark boundaries emit
	// instants before delegating.
	mkHook := func(k *osched.Kernel, img *exec.Image) exec.MarkHook {
		var hook exec.MarkHook
		switch {
		case factory != nil:
			hook = factory(k, img)
		case cfg.Mode == Tuned || cfg.Mode == Overhead:
			t := tuning.NewTuner(tcfg, machine, k.Hardware, img)
			if spillEng != nil {
				t.SetEngine(spillEng)
			}
			t.SetTracer(cfg.Trace)
			hook = t
		case cfg.Mode == Oracle:
			if oracleEng != nil {
				hook = online.NewOracleEngineHook(oracleEng, img, oracleDecs[img])
			} else {
				hook = online.NewOracleHook(img, oracleMasks[img])
			}
		case cfg.Mode == Hybrid:
			hook = hybrid.Hook(img)
		}
		return traceMarkHook(cfg.Trace, hook)
	}

	if closed {
		// Per-slot queue positions; spawn the next job of a slot on
		// completion.
		positions := make([]int, cfg.Workload.NumSlots())
		seeds := rng.New(cfg.Seed)
		slotSeeds := make([]*rng.Source, cfg.Workload.NumSlots())
		for i := range slotSeeds {
			slotSeeds[i] = seeds.Split()
		}
		spawnNext := func(k *osched.Kernel, slot int) {
			q := cfg.Workload.Slots[slot]
			if positions[slot] >= len(q) {
				return // queue drained
			}
			b := q[positions[slot]]
			positions[slot]++
			img := images[b]
			p := exec.NewProcess(k.NextPID(), img, &kernel.Cost, slotSeeds[slot].Uint64(), mkHook(k, img))
			k.Spawn(p, b.Name(), slot, 0)
		}
		kernel.OnExit = func(k *osched.Kernel, t *osched.Task) {
			if t.Slot >= 0 {
				spawnNext(k, t.Slot)
			}
		}
		for slot := range cfg.Workload.Slots {
			spawnNext(kernel, slot)
		}
	} else {
		// Open system: admit each arrival at its timestamp via a kernel
		// timer. Process seeds are drawn in arrival order from the run seed
		// and Slot records the arrival index, so compared policies run the
		// same jobs with the same branch seeds — the open-system analogue of
		// the paper's "the same queues were used for each experiment".
		seeds := rng.New(cfg.Seed)
		for i, a := range cfg.Stream.Arrivals {
			b := cfg.Stream.Fleet[a.Fleet]
			img := images[b]
			seed := seeds.Uint64()
			idx := i
			kernel.At(osched.SecToPs(a.AtSec), func(k *osched.Kernel) {
				if cfg.Trace != nil {
					cfg.Trace.Instant("sim", "admit", trace.PidMachine, trace.TidKernel, k.NowPs(),
						trace.Arg{Key: "arrival", Value: idx},
						trace.Arg{Key: "name", Value: b.Name()})
				}
				p := exec.NewProcess(k.NextPID(), img, &kernel.Cost, seed, mkHook(k, img))
				k.Spawn(p, b.Name(), idx, 0)
			})
		}
	}

	if cfg.Trace != nil {
		cfg.Trace.Instant("sim", "run.start", trace.PidMachine, trace.TidKernel, kernel.NowPs(),
			trace.Arg{Key: "mode", Value: cfg.Mode.String()},
			trace.Arg{Key: "machine", Value: machine.Name},
			trace.Arg{Key: "duration_sec", Value: cfg.DurationSec},
			trace.Arg{Key: "seed", Value: cfg.Seed})
	}
	if kernel.RunCancellable(cfg.DurationSec, func() bool { return ctx.Err() != nil }) {
		return nil, ctx.Err()
	}
	if cfg.Trace != nil {
		cfg.Trace.Instant("sim", "run.end", trace.PidMachine, trace.TidKernel, kernel.NowPs(),
			trace.Arg{Key: "tasks", Value: len(kernel.Tasks())},
			trace.Arg{Key: "instructions", Value: kernel.TotalInstructions()})
	}

	for _, t := range kernel.Tasks() {
		stat := metrics.TaskStat{
			Name:          t.Name,
			Slot:          t.Slot,
			ArrivalSec:    osched.PsToSec(t.ArrivalPs),
			CompletionSec: -1,
			Migrations:    t.Migrations,
			Instructions:  t.Proc.Counters.Instructions,
			Cycles:        t.Proc.Counters.Cycles,
			MarksExecuted: t.Proc.MarksExecuted,
			FinalAffinity: t.Affinity,
		}
		if t.State == osched.TaskExited {
			stat.CompletionSec = osched.PsToSec(t.CompletionPs)
		}
		if cfg.Trace != nil {
			// One lifetime span per task, emitted post-run so unfinished
			// tasks close at the horizon.
			endPs := t.CompletionPs
			done := t.State == osched.TaskExited
			if !done {
				endPs = kernel.NowPs()
			}
			cfg.Trace.Span("task", t.Name, trace.PidTasks, t.Proc.PID, t.ArrivalPs, endPs,
				trace.Arg{Key: "slot", Value: t.Slot},
				trace.Arg{Key: "migrations", Value: t.Migrations},
				trace.Arg{Key: "instructions", Value: t.Proc.Counters.Instructions},
				trace.Arg{Key: "done", Value: done})
		}
		res.Tasks = append(res.Tasks, stat)
	}
	for _, s := range kernel.Samples() {
		res.Samples = append(res.Samples, metrics.ThroughputSample{
			AtSec:        osched.PsToSec(s.AtPs),
			Instructions: s.Instructions,
		})
	}
	res.TotalInstructions = kernel.TotalInstructions()
	res.CounterDefers = kernel.Hardware.Defers()
	res.PeakRunnable = kernel.PeakLive()
	res.OvercommitSlices = kernel.OvercommitSlices()
	if monitor != nil {
		stats := monitor.Stats()
		res.Online = &stats
	}
	if hybrid != nil {
		stats := hybrid.Stats()
		res.Online = &stats
	}
	if col != nil {
		res.Ledger = col.Finalize(kernel.NowPs())
	}
	res.CacheStats = kernel.CacheStats()
	return res, nil
}

// IsolationResult is one benchmark's isolation run.
type IsolationResult struct {
	// RuntimeSec is the completion time running alone on the machine.
	RuntimeSec float64
	// Migrations counts core switches (Table 1's "Switches" column when run
	// tuned).
	Migrations int
	// Cycles and Instructions are final counters.
	Cycles, Instructions uint64
	// MarksExecuted counts dynamic mark executions.
	MarksExecuted uint64
}

// IsolationSpec configures an isolation campaign: every suite benchmark
// runs alone on the machine.
type IsolationSpec struct {
	Suite     []*workload.Benchmark
	Machine   *amp.Machine
	Cost      exec.CostModel
	Sched     osched.Config
	Mode      Mode
	Params    transition.Params
	Tuning    tuning.Config
	Online    online.Config
	Placement place.Config
	Typing    phase.Options
	Seed      uint64
	// Workers bounds concurrent isolation runs (<=1 means sequential).
	Workers int
	// Cache, when set, serves prepared images.
	Cache *ImageCache
}

// Isolation runs each benchmark alone on the machine and returns per-name
// results. mode selects baseline (for t_j reference times) or tuned (for
// Table 1 switch counts).
func Isolation(suite []*workload.Benchmark, machine *amp.Machine, cost exec.CostModel,
	sched osched.Config, mode Mode, params transition.Params, tcfg tuning.Config,
	topts phase.Options, seed uint64) (map[string]IsolationResult, error) {

	return IsolationContext(context.Background(), IsolationSpec{
		Suite: suite, Machine: machine, Cost: cost, Sched: sched, Mode: mode,
		Params: params, Tuning: tcfg, Typing: topts, Seed: seed,
	})
}

// IsolationContext runs the isolation campaign with cancellation, fanning
// the suite across spec.Workers goroutines. Results are independent of the
// worker count: each benchmark's run is a pure function of the spec.
func IsolationContext(ctx context.Context, spec IsolationSpec) (map[string]IsolationResult, error) {
	machine := spec.Machine
	if machine == nil {
		machine = amp.Quad2Fast2Slow()
	}
	topts := spec.Typing
	if topts.K == 0 {
		topts.K = 2
	}
	if topts.MinBlockInstrs == 0 {
		topts.MinBlockInstrs = 5
	}
	tcfg := spec.Tuning
	switch spec.Mode {
	case Tuned:
		tcfg.Mode = tuning.ModeTune
	case Overhead:
		tcfg.Mode = tuning.ModeAllCores
	}

	onlCfg := spec.Online.Normalized()
	results := make([]IsolationResult, len(spec.Suite))
	runOne := func(b *workload.Benchmark) (IsolationResult, error) {
		art, _, err := prepare(spec.Cache, b.Prog, ImageSpec{
			Baseline: spec.Mode == Baseline || spec.Mode == Dynamic,
			Params:   spec.Params, Typing: topts, ErrSeed: spec.Seed,
		}, spec.Cost)
		if err != nil {
			return IsolationResult{}, fmt.Errorf("sim: isolation %s: %w", b.Name(), err)
		}
		img := art.Image
		sched := spec.Sched
		if spec.Mode == Dynamic || spec.Mode == Hybrid {
			sched.MonitorIntervalSec = onlCfg.TickSec
		}
		kernel, err := osched.NewKernel(machine, spec.Cost, sched)
		if err != nil {
			return IsolationResult{}, err
		}
		pcfg := spec.Placement.Normalized()
		var hook exec.MarkHook
		switch spec.Mode {
		case Tuned, Overhead:
			t := tuning.NewTuner(tcfg, machine, kernel.Hardware, img)
			if tcfg.Spill {
				eng := place.NewEngine(machine, tcfg.Delta, pcfg)
				t.SetEngine(eng)
			}
			hook = t
		case Dynamic:
			kernel.Monitor = online.NewManager(onlCfg, pcfg, machine, kernel.Hardware)
		case Hybrid:
			hm := online.NewHybrid(onlCfg, pcfg, machine, kernel.Hardware)
			kernel.Monitor = hm
			hook = hm.Hook(img)
		case Oracle:
			masks, err := online.OracleAssignments(img, topts, spec.Cost, machine, tcfg.Delta)
			if err != nil {
				return IsolationResult{}, fmt.Errorf("sim: isolation oracle %s: %w", b.Name(), err)
			}
			hook = online.NewOracleHook(img, masks)
		}
		p := exec.NewProcess(kernel.NextPID(), img, &kernel.Cost, spec.Seed^uint64(len(b.Name())), hook)
		task := kernel.Spawn(p, b.Name(), 0, 0)
		if err := kernel.RunUntilDone(1e6); err != nil {
			return IsolationResult{}, fmt.Errorf("sim: isolation %s: %w", b.Name(), err)
		}
		return IsolationResult{
			RuntimeSec:    osched.PsToSec(task.CompletionPs - task.ArrivalPs),
			Migrations:    task.Migrations,
			Cycles:        p.Counters.Cycles,
			Instructions:  p.Counters.Instructions,
			MarksExecuted: p.MarksExecuted,
		}, nil
	}

	err := ForEach(ctx, len(spec.Suite), spec.Workers, func(i int) error {
		r, err := runOne(spec.Suite[i])
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]IsolationResult, len(spec.Suite))
	for i, b := range spec.Suite {
		out[b.Name()] = results[i]
	}
	return out, nil
}
