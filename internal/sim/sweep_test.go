package sim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/phase"
	"phasetune/internal/transition"
	"phasetune/internal/workload"
)

func testSuite(t testing.TB) []*workload.Benchmark {
	t.Helper()
	suite, err := workload.Suite(exec.DefaultCostModel(), amp.Quad2Fast2Slow())
	if err != nil {
		t.Fatal(err)
	}
	return suite
}

func TestImageCacheSingleflight(t *testing.T) {
	suite := testSuite(t)
	c := NewImageCache()
	spec := ImageSpec{
		Params: transition.Params{Technique: transition.Loop, MinSize: 45, PropagateThroughUntyped: true},
		Typing: phase.Options{K: 2, MinBlockInstrs: 5},
	}
	cm := exec.DefaultCostModel()

	const goroutines = 16
	arts := make([]*Artifact, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			art, err := c.Get(suite[0].Prog, spec, cm)
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = art
		}(i)
	}
	wg.Wait()

	stats := c.Stats()
	if stats.Misses != 1 {
		t.Errorf("pipeline ran %d times for %d concurrent requests, want 1", stats.Misses, goroutines)
	}
	if stats.Hits != goroutines-1 {
		t.Errorf("hits = %d, want %d", stats.Hits, goroutines-1)
	}
	for i := 1; i < goroutines; i++ {
		if arts[i] != arts[0] {
			t.Fatalf("request %d got a different artifact pointer", i)
		}
	}
}

func TestImageCacheKeyNormalization(t *testing.T) {
	suite := testSuite(t)
	c := NewImageCache()
	cm := exec.DefaultCostModel()
	params := transition.Params{Technique: transition.Interval, MinSize: 45, PropagateThroughUntyped: true}
	topts := phase.Options{K: 2, MinBlockInstrs: 5}

	// With no error injection, the error seed must not fragment the cache.
	a1, err := c.Get(suite[0].Prog, ImageSpec{Params: params, Typing: topts, ErrSeed: 1}, cm)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Get(suite[0].Prog, ImageSpec{Params: params, Typing: topts, ErrSeed: 99}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("error seed fragmented the cache with ErrFrac == 0")
	}

	// Baseline entries ignore technique parameters entirely.
	b1, err := c.Get(suite[0].Prog, ImageSpec{Baseline: true, Params: params}, cm)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.Get(suite[0].Prog, ImageSpec{Baseline: true}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Error("baseline cache entries fragmented by technique params")
	}

	// With error injection on, the seed genuinely distinguishes artifacts.
	e1, err := c.Get(suite[0].Prog, ImageSpec{Params: params, Typing: topts, ErrFrac: 0.3, ErrSeed: 1}, cm)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Get(suite[0].Prog, ImageSpec{Params: params, Typing: topts, ErrFrac: 0.3, ErrSeed: 2}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e2 {
		t.Error("distinct error seeds shared one artifact")
	}
}

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var count atomic.Int64
		hit := make([]bool, 100)
		err := ForEach(context.Background(), len(hit), workers, func(i int) error {
			hit[i] = true
			count.Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if count.Load() != int64(len(hit)) {
			t.Errorf("workers=%d: ran %d of %d", workers, count.Load(), len(hit))
		}
		for i, h := range hit {
			if !h {
				t.Fatalf("workers=%d: index %d never ran", workers, i)
			}
		}
	}
}

func TestForEachStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ForEach(context.Background(), 1000, 4, func(i int) error {
		ran.Add(1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran.Load() == 1000 {
		t.Error("all work ran despite an early failure")
	}
}

func TestForEachHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 100, 4, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
