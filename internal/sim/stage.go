package sim

import (
	"fmt"
	"hash/fnv"
	"sync"

	"phasetune/internal/cfg"
	"phasetune/internal/exec"
	"phasetune/internal/instrument"
	"phasetune/internal/phase"
	"phasetune/internal/prog"
	"phasetune/internal/rng"
	"phasetune/internal/summarize"
	"phasetune/internal/transition"
)

// Analysis is the technique-independent front half of the static pipeline:
// CFG construction, call-graph construction, and k-means block typing (with
// optional error injection). One Analysis can be instrumented under many
// technique variants without re-running any of these stages.
type Analysis struct {
	// Prog is the analyzed program.
	Prog *prog.Program
	// Graphs are the per-procedure CFGs.
	Graphs []*cfg.Graph
	// CallGraph is the inter-procedural call graph.
	CallGraph *cfg.CallGraph
	// Typing is the block typing (after any error injection).
	Typing *phase.Typing
	// Opts echoes the typing options used.
	Opts phase.Options
}

// Analyze runs the front half of the static pipeline. errFrac > 0 injects
// clustering error (the Fig. 7 methodology) using errSeed.
func Analyze(p *prog.Program, opts phase.Options, errFrac float64, errSeed uint64) (*Analysis, error) {
	graphs, err := cfg.BuildAll(p)
	if err != nil {
		return nil, err
	}
	cg := cfg.BuildCallGraph(p, graphs)
	typing, err := phase.ClusterBlocks(p, graphs, opts)
	if err != nil {
		return nil, err
	}
	if errFrac > 0 {
		typing = typing.InjectError(errFrac, rng.New(errSeed))
	}
	return &Analysis{Prog: p, Graphs: graphs, CallGraph: cg, Typing: typing, Opts: opts}, nil
}

// Artifact is a reusable product of the static pipeline: an executable
// instrumented image plus its statistics. Artifacts are immutable and safe
// to share across concurrent runs.
type Artifact struct {
	// Image is the executable image.
	Image *exec.Image
	// Stats summarizes the instrumentation.
	Stats ImageStats
}

// Instrument runs the back half of the static pipeline on the analysis:
// loop summarization (for the Loop technique), transition planning, binary
// rewriting, and image construction.
func (a *Analysis) Instrument(params transition.Params, cm exec.CostModel) (*Artifact, error) {
	var sum *summarize.Summary
	if params.Technique == transition.Loop {
		sum = summarize.SummarizeLoops(a.Prog, a.Graphs, a.CallGraph, a.Typing, summarize.DefaultWeights())
	}
	plan, err := transition.ComputePlan(a.Prog, a.Graphs, a.CallGraph, a.Typing, sum, params)
	if err != nil {
		return nil, err
	}
	bin, err := instrument.ApplyWithGraphs(a.Prog, plan, a.Graphs)
	if err != nil {
		return nil, err
	}
	img, err := exec.NewImage(bin.Prog, bin, cm)
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Image: img,
		Stats: ImageStats{
			Marks:         bin.NumMarks(),
			SpaceOverhead: bin.SpaceOverhead(),
			OrigBytes:     bin.OrigBytes,
			NewBytes:      bin.NewBytes,
			EffectiveK:    a.Typing.K,
		},
	}, nil
}

// ImageSpec identifies one image preparation, independent of which Program
// pointer carries the content: two specs with equal fields and equal program
// content always yield bit-identical images.
type ImageSpec struct {
	// Baseline selects an uninstrumented image; Params, Typing, ErrFrac and
	// ErrSeed are ignored when set.
	Baseline bool
	// Params is the marking technique.
	Params transition.Params
	// Typing configures static block typing.
	Typing phase.Options
	// ErrFrac injects clustering error; ErrSeed drives the injection.
	ErrFrac float64
	ErrSeed uint64
}

// normalize zeroes fields the pipeline ignores so they cannot fragment the
// cache: everything under Baseline, and the error seed when no error is
// injected.
func (s ImageSpec) normalize() ImageSpec {
	if s.Baseline {
		return ImageSpec{Baseline: true}
	}
	if s.ErrFrac == 0 {
		s.ErrSeed = 0
	}
	return s
}

// artifactKey is the content key of one cache entry: the program content
// hash plus every input the static pipeline consumes.
type artifactKey struct {
	progHash uint64
	spec     ImageSpec
	cost     exec.CostModel
}

// cacheEntry is a singleflight slot: the first requester computes, every
// concurrent requester for the same key waits on the same entry.
type cacheEntry struct {
	once sync.Once
	art  *Artifact
	err  error
}

// ImageCache is a content-keyed cache of prepared images. It is safe for
// concurrent use; concurrent requests for the same key run the static
// pipeline exactly once (the others block until it lands). An experiment
// campaign sharing one cache therefore instruments each distinct
// (program, technique, typing, error-injection) combination once, no matter
// how many runs, seeds, or goroutines consume it.
type ImageCache struct {
	mu      sync.Mutex
	entries map[artifactKey]*cacheEntry
	hashes  map[*prog.Program]uint64

	hits, misses uint64
}

// NewImageCache returns an empty cache.
func NewImageCache() *ImageCache {
	return &ImageCache{
		entries: map[artifactKey]*cacheEntry{},
		hashes:  map[*prog.Program]uint64{},
	}
}

// progHash returns the FNV-64a hash of the program's canonical encoding,
// memoized per Program pointer (programs are immutable once built).
func (c *ImageCache) progHash(p *prog.Program) (uint64, error) {
	c.mu.Lock()
	if h, ok := c.hashes[p]; ok {
		c.mu.Unlock()
		return h, nil
	}
	c.mu.Unlock()
	h := fnv.New64a()
	if err := prog.Encode(h, p); err != nil {
		return 0, fmt.Errorf("sim: hashing %s: %w", p.Name, err)
	}
	sum := h.Sum64()
	c.mu.Lock()
	c.hashes[p] = sum
	c.mu.Unlock()
	return sum, nil
}

// Get returns the artifact for (program, spec, cost model), preparing it on
// first request and serving every later request from the cache.
func (c *ImageCache) Get(p *prog.Program, spec ImageSpec, cm exec.CostModel) (*Artifact, error) {
	art, _, err := c.get(p, spec, cm)
	return art, err
}

// get is Get plus a hit indicator: hit is true when this request did not
// run the static pipeline (it found, or waited on, an existing entry).
func (c *ImageCache) get(p *prog.Program, spec ImageSpec, cm exec.CostModel) (art *Artifact, hit bool, err error) {
	spec = spec.normalize()
	hash, err := c.progHash(p)
	if err != nil {
		return nil, false, err
	}
	key := artifactKey{progHash: hash, spec: spec, cost: cm}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.art, e.err = prepareArtifact(p, spec, cm)
	})
	return e.art, ok, e.err
}

// Stats reports cache effectiveness counters.
func (c *ImageCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// CacheStats is a snapshot of ImageCache counters. Misses counts static
// pipeline executions; Hits counts requests served without one.
type CacheStats struct {
	Hits, Misses uint64
	Entries      int
}

// prepare resolves one artifact through the cache when one is supplied,
// directly otherwise. cached reports whether a cache served the request
// without running the static pipeline.
func prepare(c *ImageCache, p *prog.Program, spec ImageSpec, cm exec.CostModel) (art *Artifact, cached bool, err error) {
	if c == nil {
		art, err = prepareArtifact(p, spec, cm)
		return art, false, err
	}
	return c.get(p, spec, cm)
}

// prepareArtifact builds one artifact without caching.
func prepareArtifact(p *prog.Program, spec ImageSpec, cm exec.CostModel) (*Artifact, error) {
	if spec.Baseline {
		img, err := exec.NewImage(p, nil, cm)
		if err != nil {
			return nil, err
		}
		return &Artifact{Image: img}, nil
	}
	a, err := Analyze(p, spec.Typing, spec.ErrFrac, spec.ErrSeed)
	if err != nil {
		return nil, err
	}
	return a.Instrument(spec.Params, cm)
}

// PrepareImage runs the full static pipeline for one program under one
// technique: CFGs -> typing (with optional error injection) -> summarization
// -> transition plan -> instrumentation -> executable image. It is the
// one-shot composition of Analyze and Analysis.Instrument.
func PrepareImage(p *prog.Program, params transition.Params, topts phase.Options,
	errFrac float64, errSeed uint64, cm exec.CostModel) (*exec.Image, ImageStats, error) {

	art, err := prepareArtifact(p, ImageSpec{
		Params: params, Typing: topts, ErrFrac: errFrac, ErrSeed: errSeed,
	}, cm)
	if err != nil {
		return nil, ImageStats{}, err
	}
	return art.Image, art.Stats, nil
}
