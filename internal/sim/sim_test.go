package sim

import (
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/exec"
	"phasetune/internal/metrics"
	"phasetune/internal/osched"
	"phasetune/internal/phase"
	"phasetune/internal/transition"
	"phasetune/internal/tuning"
	"phasetune/internal/workload"
)

func suite(t *testing.T) []*workload.Benchmark {
	t.Helper()
	s, err := workload.Suite(exec.DefaultCostModel(), amp.Quad2Fast2Slow())
	if err != nil {
		t.Fatalf("Suite: %v", err)
	}
	return s
}

func loopParams() transition.Params {
	return transition.Params{
		Technique:               transition.Loop,
		MinSize:                 45,
		PropagateThroughUntyped: true,
	}
}

func runPair(t *testing.T, slots int, durationSec float64) (base, tuned *Result) {
	t.Helper()
	s := suite(t)
	w := workload.BuildWorkload(s, slots, 64, 99)
	var err error
	base, err = Run(RunConfig{Workload: w, DurationSec: durationSec, Mode: Baseline, Seed: 7})
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	tuned, err = Run(RunConfig{
		Workload:    w,
		DurationSec: durationSec,
		Mode:        Tuned,
		Params:      loopParams(),
		Tuning:      tuning.DefaultConfig(),
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("tuned run: %v", err)
	}
	return base, tuned
}

func TestTunedImprovesAvgProcessTime(t *testing.T) {
	if testing.Short() {
		t.Skip("workload simulation")
	}
	base, tuned := runPair(t, 12, 120)
	bAvg := metrics.AvgProcessTime(base.Tasks)
	tAvg := metrics.AvgProcessTime(tuned.Tasks)
	if metrics.CompletedCount(base.Tasks) == 0 || metrics.CompletedCount(tuned.Tasks) == 0 {
		t.Fatalf("no completions: base %d tuned %d",
			metrics.CompletedCount(base.Tasks), metrics.CompletedCount(tuned.Tasks))
	}
	t.Logf("avg process time: baseline %.2fs tuned %.2fs (%.1f%% decrease), completions %d/%d",
		bAvg, tAvg, metrics.PercentDecrease(bAvg, tAvg),
		metrics.CompletedCount(base.Tasks), metrics.CompletedCount(tuned.Tasks))
	if tAvg >= bAvg {
		t.Errorf("tuned avg process time %.2f not better than baseline %.2f", tAvg, bAvg)
	}
}

func TestTunedSwitchesOccur(t *testing.T) {
	if testing.Short() {
		t.Skip("workload simulation")
	}
	_, tuned := runPair(t, 8, 60)
	totalMigrations, totalMarks := 0, uint64(0)
	for _, task := range tuned.Tasks {
		totalMigrations += task.Migrations
		totalMarks += task.MarksExecuted
	}
	if totalMarks == 0 {
		t.Error("no phase marks executed in tuned run")
	}
	if totalMigrations == 0 {
		t.Error("no core switches in tuned run")
	}
}

func TestBaselineAndTunedShareWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("workload simulation")
	}
	base, tuned := runPair(t, 6, 40)
	// The first len(slots) tasks must be the same benchmarks in the same
	// slots (same queues, same seeds — the paper's comparison protocol).
	for i := 0; i < 6; i++ {
		if base.Tasks[i].Name != tuned.Tasks[i].Name || base.Tasks[i].Slot != tuned.Tasks[i].Slot {
			t.Errorf("slot %d: baseline ran %s, tuned ran %s", i, base.Tasks[i].Name, tuned.Tasks[i].Name)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("workload simulation")
	}
	s := suite(t)
	w := workload.BuildWorkload(s, 4, 16, 5)
	cfg := RunConfig{Workload: w, DurationSec: 30, Mode: Tuned, Params: loopParams(),
		Tuning: tuning.DefaultConfig(), Seed: 11}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalInstructions != b.TotalInstructions {
		t.Errorf("identical configs: %d vs %d instructions", a.TotalInstructions, b.TotalInstructions)
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("task %d differs between identical runs", i)
		}
	}
}

func TestOverheadModeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("workload simulation")
	}
	s := suite(t)
	w := workload.BuildWorkload(s, 6, 32, 21)
	base, err := Run(RunConfig{Workload: w, DurationSec: 60, Mode: Baseline, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	over, err := Run(RunConfig{Workload: w, DurationSec: 60, Mode: Overhead,
		Params: loopParams(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bTput := float64(base.TotalInstructions)
	oTput := float64(over.TotalInstructions)
	// Marks execute but all-cores affinity never forces migrations: the
	// instrumented run must be within a few percent of baseline (paper
	// <0.2% for the loop technique at scale; allow slack at this tiny size).
	rel := (bTput - oTput) / bTput
	t.Logf("overhead mode throughput delta: %.3f%%", rel*100)
	if rel > 0.05 {
		t.Errorf("overhead run lost %.1f%% throughput, want < 5%%", rel*100)
	}
	marks := uint64(0)
	for _, task := range over.Tasks {
		marks += task.MarksExecuted
	}
	if marks == 0 {
		t.Error("overhead mode executed no marks")
	}
}

func TestIsolationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("isolation simulation")
	}
	s := suite(t)
	iso, err := Isolation(s, amp.Quad2Fast2Slow(), exec.DefaultCostModel(),
		osched.DefaultConfig(), Baseline, transition.Params{}, tuning.Config{}, phase.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(iso) != len(s) {
		t.Fatalf("isolation results for %d benchmarks, want %d", len(iso), len(s))
	}
	// Runtimes should roughly match the designed targets (within 40%: the
	// generator's analytic estimate ignores queueing and rounding).
	for _, b := range s {
		r := iso[b.Name()]
		if r.RuntimeSec <= 0 {
			t.Errorf("%s: no isolation runtime", b.Name())
			continue
		}
		ratio := r.RuntimeSec / b.Spec.TargetSec
		if ratio < 0.5 || ratio > 1.6 {
			t.Errorf("%s: isolation runtime %.1fs vs target %.1fs (ratio %.2f)",
				b.Name(), r.RuntimeSec, b.Spec.TargetSec, ratio)
		}
	}
	// Relative ordering of the longest vs shortest benchmarks must hold.
	if iso["410.bwaves"].RuntimeSec < iso["164.gzip"].RuntimeSec {
		t.Error("bwaves not longer than gzip")
	}
}

func TestPrepareImageStats(t *testing.T) {
	s := suite(t)
	var gems *workload.Benchmark
	for _, b := range s {
		if b.Name() == "459.GemsFDTD" {
			gems = b
		}
	}
	if gems == nil {
		t.Fatal("suite missing 459.GemsFDTD")
	}
	img, stats, err := PrepareImage(gems.Prog, loopParams(), phase.Options{K: 2, MinBlockInstrs: 5},
		0, 1, exec.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// A single-behavior benchmark must collapse to one phase type and carry
	// no marks (Table 1 shows zero switches for GemsFDTD).
	if stats.EffectiveK != 1 {
		t.Errorf("GemsFDTD effective K = %d, want 1", stats.EffectiveK)
	}
	if stats.Marks != 0 {
		t.Errorf("GemsFDTD has %d marks, want 0", stats.Marks)
	}
	if img.NumMarks() != 0 {
		t.Errorf("image mark table not empty")
	}
}

func TestRunRejectsEmptyWorkload(t *testing.T) {
	if _, err := Run(RunConfig{Workload: &workload.Workload{}, DurationSec: 1}); err == nil {
		t.Error("empty workload accepted")
	}
}
