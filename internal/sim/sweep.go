package sim

import (
	"context"
	"runtime"
	"sync"

	"phasetune/internal/exec"
)

// SweepOptions configures a concurrent sweep.
type SweepOptions struct {
	// Workers bounds the worker pool; <=0 uses GOMAXPROCS.
	Workers int
	// Cache, when set, is injected into every run that does not already
	// carry one, so the whole sweep shares prepared images.
	Cache *ImageCache
	// Memo, when set, is injected into every run that does not already
	// carry one, so the whole sweep shares memoized segment outcomes.
	Memo *exec.SegmentMemo
	// Events, when set, is injected into every run that does not already
	// carry hooks.
	Events Events
	// OnDone, when set, fires after each run completes (from the worker's
	// goroutine; index is the run's position in the input grid).
	OnDone func(index int, res *Result, err error)
}

// Sweep executes a grid of runs across a bounded worker pool and returns
// results in input order. Each run is a pure function of its RunConfig, so
// the result slice is deterministic — bit-identical to executing the same
// configs sequentially with Run — regardless of worker count or completion
// order. The first error (by input order) aborts outstanding work and is
// returned.
func Sweep(ctx context.Context, grid []RunConfig, opts SweepOptions) ([]*Result, error) {
	results := make([]*Result, len(grid))
	err := ForEach(ctx, len(grid), opts.Workers, func(i int) error {
		cfg := grid[i]
		if cfg.Cache == nil {
			cfg.Cache = opts.Cache
		}
		if cfg.Memo == nil {
			cfg.Memo = opts.Memo
		}
		if cfg.Events.OnImage == nil && cfg.Events.OnProgress == nil {
			cfg.Events = opts.Events
		}
		res, err := RunContext(ctx, cfg)
		if opts.OnDone != nil {
			opts.OnDone(i, res, err)
		}
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ForEach runs f(0..n-1) across a bounded worker pool, honoring ctx. Once
// any call fails, no new work starts; among the errors actually observed,
// the lowest-indexed one is returned.
func ForEach(ctx context.Context, n, workers int, f func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		errIndex = n
		next     int
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil || failed() {
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					mu.Lock()
					if firstErr == nil || i < errIndex {
						firstErr, errIndex = err, i
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
