package sim

import (
	"phasetune/internal/exec"
	"phasetune/internal/trace"
)

// traceMarkHook wraps a process's mark hook so every phase-mark boundary
// emits an instant before delegating. The kernel type-asserts hooks
// against exec.QuantumHook to run end-of-quantum callbacks, so a wrapped
// hook must present exactly the interface surface of the hook it wraps —
// wrapping a QuantumHook in a plain MarkHook shell would silently drop
// bounded monitoring windows and break the traced-equals-untraced
// contract. Two wrapper types keep the assertion intact.
func traceMarkHook(tr *trace.Tracer, inner exec.MarkHook) exec.MarkHook {
	if tr == nil || inner == nil {
		return inner
	}
	if _, ok := inner.(exec.QuantumHook); ok {
		return &traceQuantumHook{traceHook{tr: tr, inner: inner}}
	}
	return &traceHook{tr: tr, inner: inner}
}

type traceHook struct {
	tr    *trace.Tracer
	inner exec.MarkHook
}

func (h *traceHook) OnMark(p *exec.Process, markID, coreID int) exec.MarkAction {
	h.tr.InstantNow("exec", "mark", trace.PidTasks, p.PID,
		trace.Arg{Key: "mark", Value: markID},
		trace.Arg{Key: "core", Value: coreID})
	return h.inner.OnMark(p, markID, coreID)
}

func (h *traceHook) OnExit(p *exec.Process) { h.inner.OnExit(p) }

type traceQuantumHook struct {
	traceHook
}

func (h *traceQuantumHook) OnQuantum(p *exec.Process, coreID int) exec.MarkAction {
	return h.inner.(exec.QuantumHook).OnQuantum(p, coreID)
}
