package sim

import (
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/cfg"
	"phasetune/internal/exec"
	"phasetune/internal/isa"
	"phasetune/internal/osched"
	"phasetune/internal/phase"
	"phasetune/internal/prog"
	"phasetune/internal/rng"
	"phasetune/internal/transition"
	"phasetune/internal/tuning"
)

// randomProgram generates a structurally random (but always valid) program:
// nested loops, conditionals, calls, and mixed block kinds.
func randomProgram(r *rng.Source, id int) *prog.Program {
	b := prog.NewBuilder("rand")
	nHelpers := r.Intn(3)
	for h := 0; h < nHelpers; h++ {
		hp := b.Proc(helperName(h))
		emitRandomBody(r, hp, 2, nil)
		hp.Ret()
	}
	main := b.Proc("main")
	b.SetEntry("main")
	var helpers []string
	for h := 0; h < nHelpers; h++ {
		helpers = append(helpers, helperName(h))
	}
	emitRandomBody(r, main, 3, helpers)
	main.Ret()
	return b.MustBuild()
}

func helperName(i int) string { return string(rune('a'+i)) + "helper" }

// emitRandomBody emits a random structured body with bounded nesting.
func emitRandomBody(r *rng.Source, pb *prog.ProcBuilder, depth int, helpers []string) {
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		switch choice := r.Intn(5); {
		case choice == 0 && depth > 0:
			trips := 2 + r.Intn(30)
			pb.Loop(float64(trips), func(pb *prog.ProcBuilder) {
				emitRandomBody(r, pb, depth-1, helpers)
			})
		case choice == 1 && depth > 0:
			emitIf(r, pb, depth, helpers)
		case choice == 2 && len(helpers) > 0:
			pb.CallProc(helpers[r.Intn(len(helpers))])
		default:
			pb.Straight(randomMix(r))
		}
	}
}

func emitIf(r *rng.Source, pb *prog.ProcBuilder, depth int, helpers []string) {
	pb.IfElse(r.Float64(),
		func(pb *prog.ProcBuilder) { emitRandomBody(r, pb, depth-1, helpers) },
		func(pb *prog.ProcBuilder) { pb.Straight(randomMix(r)) },
	)
}

func randomMix(r *rng.Source) prog.BlockMix {
	if r.Intn(2) == 0 {
		return prog.BlockMix{
			IntALU: 5 + r.Intn(30), IntMul: r.Intn(8),
			FPAdd: r.Intn(10),
			Load:  r.Intn(4), WorkingSetKB: 16, Locality: 0.99,
		}
	}
	return prog.BlockMix{
		Load: 4 + r.Intn(16), Store: r.Intn(8), IntALU: r.Intn(10),
		WorkingSetKB: 256 * float64(1+r.Intn(24)), Locality: 0.9 + 0.08*r.Float64(),
	}
}

// TestRandomProgramsSurviveFullPipeline pushes random programs through every
// stage: CFG invariants, all three marking techniques, instrumentation,
// image building, and bounded tuned execution.
func TestRandomProgramsSurviveFullPipeline(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cost := exec.DefaultCostModel()
	pars := exec.ParamsFor(cost, machine)
	techniques := []transition.Params{
		{Technique: transition.BasicBlock, MinSize: 10, Lookahead: 1, PropagateThroughUntyped: true},
		{Technique: transition.Interval, MinSize: 30, PropagateThroughUntyped: true},
		{Technique: transition.Loop, MinSize: 30, PropagateThroughUntyped: true},
	}

	const trials = 40
	r := rng.New(20260610)
	for i := 0; i < trials; i++ {
		p := randomProgram(r, i)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: invalid program: %v", i, err)
		}
		graphs, err := cfg.BuildAll(p)
		if err != nil {
			t.Fatalf("trial %d: CFG: %v", i, err)
		}
		// CFG invariant: every instruction belongs to exactly one block.
		for pi, g := range graphs {
			covered := 0
			for _, blk := range g.Blocks {
				covered += blk.NumInstrs()
			}
			if covered != len(p.Procs[pi].Instrs) {
				t.Fatalf("trial %d proc %d: blocks cover %d of %d instrs",
					i, pi, covered, len(p.Procs[pi].Instrs))
			}
		}
		for _, params := range techniques {
			img, _, err := PrepareImage(p, params, phase.Options{K: 2, MinBlockInstrs: 5}, 0, uint64(i), cost)
			if err != nil {
				t.Fatalf("trial %d %s: %v", i, params.Name(), err)
			}
			// Execute bounded with a tuner attached; must not panic or hang.
			hw := osched.DefaultConfig()
			_ = hw
			kern, err := osched.NewKernel(machine, cost, osched.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			tu := tuning.NewTuner(tuning.DefaultConfig(), machine, kern.Hardware, img)
			proc := exec.NewProcess(1, img, &cost, uint64(i)+7, tu)
			var cycles int64
			for !proc.Exited() && cycles < 3_000_000 {
				res := proc.Step(&pars[0], 0, 4096)
				cycles += res.Cycles
			}
		}
	}
}

// TestRandomProgramsDeterministicExecution verifies the whole pipeline is a
// pure function of the seed for arbitrary programs.
func TestRandomProgramsDeterministicExecution(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cost := exec.DefaultCostModel()
	pars := exec.ParamsFor(cost, machine)
	r := rng.New(77)
	for i := 0; i < 10; i++ {
		p := randomProgram(r, i)
		img, err := exec.NewImage(p, nil, cost)
		if err != nil {
			t.Fatal(err)
		}
		run := func() (uint64, uint64) {
			proc := exec.NewProcess(1, img, &cost, 1234, nil)
			proc.RunIsolated(&pars[0], 0, 4096, 2_000_000)
			return proc.Counters.Instructions, proc.Counters.Cycles
		}
		i1, c1 := run()
		i2, c2 := run()
		if i1 != i2 || c1 != c2 {
			t.Fatalf("trial %d: nondeterministic execution: %d/%d vs %d/%d", i, i1, c1, i2, c2)
		}
	}
}

// TestMarkExecutionsMatchTransitions: on instrumented random programs, the
// dynamic mark count equals the number of times control crossed a marked
// edge — which is at most the total block executions.
func TestMarkCostsAccounted(t *testing.T) {
	machine := amp.Quad2Fast2Slow()
	cost := exec.DefaultCostModel()
	pars := exec.ParamsFor(cost, machine)
	r := rng.New(31)
	for i := 0; i < 10; i++ {
		p := randomProgram(r, i)
		img, _, err := PrepareImage(p, transition.Params{
			Technique: transition.BasicBlock, MinSize: 10, PropagateThroughUntyped: true,
		}, phase.Options{K: 2, MinBlockInstrs: 5}, 0, uint64(i), cost)
		if err != nil {
			t.Fatal(err)
		}
		proc := exec.NewProcess(1, img, &cost, 5, nil)
		proc.RunIsolated(&pars[0], 0, 4096, 2_000_000)
		wantInstr := proc.MarksExecuted * uint64(cost.MarkInstrs)
		if proc.Counters.Instructions < wantInstr {
			t.Fatalf("trial %d: counters %d below mark instructions %d",
				i, proc.Counters.Instructions, wantInstr)
		}
	}
}

// TestRandomMarkedImagesValid checks instrumentation invariants over random
// programs: marks appear exactly once, targets stay in range, and byte
// accounting is exact.
func TestRandomMarkedImagesValid(t *testing.T) {
	cost := exec.DefaultCostModel()
	r := rng.New(99)
	for i := 0; i < 25; i++ {
		p := randomProgram(r, i)
		img, stats, err := PrepareImage(p, transition.Params{
			Technique: transition.BasicBlock, MinSize: 10, PropagateThroughUntyped: true,
		}, phase.Options{K: 2, MinBlockInstrs: 5}, 0, uint64(i), cost)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]int{}
		bytes := 0
		for _, pr := range img.Prog.Procs {
			for _, in := range pr.Instrs {
				bytes += in.SizeBytes()
				if in.Op == isa.PhaseMark {
					seen[in.MarkID]++
				}
			}
		}
		if len(seen) != stats.Marks {
			t.Fatalf("trial %d: %d distinct marks in code, stats say %d", i, len(seen), stats.Marks)
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("trial %d: mark %d appears %d times", i, id, n)
			}
		}
		if bytes != stats.NewBytes {
			t.Fatalf("trial %d: byte accounting %d vs %d", i, bytes, stats.NewBytes)
		}
	}
}
