package exec

import (
	"math"
	"testing"

	"phasetune/internal/amp"
	"phasetune/internal/cfg"
	"phasetune/internal/instrument"
	"phasetune/internal/isa"
	"phasetune/internal/perfcnt"
	"phasetune/internal/phase"
	"phasetune/internal/prog"
	"phasetune/internal/summarize"
	"phasetune/internal/transition"
)

// buildImage compiles a builder program into an image.
func buildImage(t *testing.T, p *prog.Program) *Image {
	t.Helper()
	img, err := NewImage(p, nil, DefaultCostModel())
	if err != nil {
		t.Fatalf("NewImage: %v", err)
	}
	return img
}

// computeProgram is pure integer work.
func computeProgram(trips float64) *prog.Program {
	b := prog.NewBuilder("compute")
	b.Proc("main").Loop(trips, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{IntALU: 16, IntMul: 4})
	}).Ret()
	return b.MustBuild()
}

// memoryProgram streams a large working set.
func memoryProgram(trips float64) *prog.Program {
	b := prog.NewBuilder("memory")
	b.Proc("main").Loop(trips, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{Load: 14, Store: 6, IntALU: 2, WorkingSetKB: 256 * 1024, Locality: 0.2})
	}).Ret()
	return b.MustBuild()
}

// run executes a fresh process of img to completion on one core type.
func run(t *testing.T, img *Image, core *CoreParams, seed uint64) (instr, cycles uint64) {
	t.Helper()
	cm := DefaultCostModel()
	p := NewProcess(1, img, &cm, seed, nil)
	p.RunIsolated(core, 0, 4096, 0)
	if !p.Exited() {
		t.Fatal("process did not exit")
	}
	return p.Counters.Instructions, p.Counters.Cycles
}

func coreParams(t *testing.T) (fast, slow *CoreParams) {
	t.Helper()
	ps := ParamsFor(DefaultCostModel(), amp.Quad2Fast2Slow())
	return &ps[0], &ps[1]
}

func TestComputeBoundEqualIPCFasterTime(t *testing.T) {
	fast, slow := coreParams(t)
	img := buildImage(t, computeProgram(2000))
	iF, cF := run(t, img, fast, 7)
	iS, cS := run(t, img, slow, 7)
	if iF != iS {
		t.Fatalf("instruction counts differ: %d vs %d (same seed)", iF, iS)
	}
	ipcF, ipcS := perfcnt.IPC(iF, cF), perfcnt.IPC(iS, cS)
	if math.Abs(ipcF-ipcS) > 0.01*ipcF {
		t.Errorf("compute-bound IPC differs across cores: fast %.4f slow %.4f", ipcF, ipcS)
	}
	// Same cycles, but the fast core retires them 1.5x faster in time.
	tF := float64(cF) / fast.CyclesPerSec
	tS := float64(cS) / slow.CyclesPerSec
	if r := tS / tF; math.Abs(r-1.5) > 0.01 {
		t.Errorf("compute-bound time ratio = %.3f, want 1.5", r)
	}
}

func TestMemoryBoundHigherIPCOnSlowCore(t *testing.T) {
	fast, slow := coreParams(t)
	img := buildImage(t, memoryProgram(2000))
	iF, cF := run(t, img, fast, 7)
	iS, cS := run(t, img, slow, 7)
	ipcF, ipcS := perfcnt.IPC(iF, cF), perfcnt.IPC(iS, cS)
	if ipcS <= ipcF {
		t.Errorf("memory-bound IPC: slow %.4f <= fast %.4f, want slow higher", ipcS, ipcF)
	}
	// Runtime barely improves on the fast core (memory-bound).
	tF := float64(cF) / fast.CyclesPerSec
	tS := float64(cS) / slow.CyclesPerSec
	if r := tS / tF; r > 1.25 {
		t.Errorf("memory-bound time ratio = %.3f, want close to 1 (< 1.25)", r)
	}
}

func TestIPCGapDrivesAlgorithm2Signal(t *testing.T) {
	// The IPC gap between core types must be large for memory-bound code
	// and tiny for compute-bound code — that is the signal δ thresholds.
	fast, slow := coreParams(t)
	cImg := buildImage(t, computeProgram(1000))
	mImg := buildImage(t, memoryProgram(1000))
	ci, cc := run(t, cImg, fast, 3)
	si, sc := run(t, cImg, slow, 3)
	gapCompute := math.Abs(perfcnt.IPC(si, sc) - perfcnt.IPC(ci, cc))
	ci, cc = run(t, mImg, fast, 3)
	si, sc = run(t, mImg, slow, 3)
	gapMemory := perfcnt.IPC(si, sc) - perfcnt.IPC(ci, cc)
	if gapMemory <= 4*gapCompute {
		t.Errorf("memory IPC gap %.4f not clearly above compute gap %.4f", gapMemory, gapCompute)
	}
}

func TestDeterministicExecution(t *testing.T) {
	fast, _ := coreParams(t)
	img := buildImage(t, memoryProgram(500))
	i1, c1 := run(t, img, fast, 42)
	i2, c2 := run(t, img, fast, 42)
	if i1 != i2 || c1 != c2 {
		t.Errorf("same seed differs: %d/%d vs %d/%d", i1, c1, i2, c2)
	}
	i3, _ := run(t, img, fast, 43)
	if i3 == i1 {
		t.Log("different seeds produced identical instruction counts (possible but unlikely)")
	}
}

func TestLoopTripCountMean(t *testing.T) {
	fast, _ := coreParams(t)
	const trips = 50
	b := prog.NewBuilder("trips")
	b.Proc("main").Loop(trips, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{IntALU: 10})
	}).Ret()
	img := buildImage(t, b.MustBuild())

	// Body block has 10 IntALU + 1 branch = 11 instructions; ret adds 1.
	// Mean iterations over many runs must approximate the trip count.
	cm := DefaultCostModel()
	total := 0.0
	const runs = 300
	for s := 0; s < runs; s++ {
		p := NewProcess(1, img, &cm, uint64(s)+1, nil)
		p.RunIsolated(fast, 0, 4096, 0)
		iters := (float64(p.Counters.Instructions) - 1) / 11
		total += iters
	}
	meanIters := total / runs
	if math.Abs(meanIters-trips) > trips*0.15 {
		t.Errorf("mean iterations = %.1f, want about %d", meanIters, trips)
	}
}

func TestCallAndReturn(t *testing.T) {
	fast, _ := coreParams(t)
	b := prog.NewBuilder("calls")
	callee := b.Proc("callee")
	callee.Straight(prog.BlockMix{IntALU: 5}).Ret()
	main := b.Proc("main")
	b.SetEntry("main")
	main.CallProc("callee").CallProc("callee").Straight(prog.BlockMix{IntALU: 3}).Ret()
	img := buildImage(t, b.MustBuild())
	i, _ := run(t, img, fast, 1)
	// 2 calls + 2x(5+ret) + 3 + ret = 2 + 12 + 4 = 18.
	if i != 18 {
		t.Errorf("instructions = %d, want 18", i)
	}
}

func TestStepAfterNotExited(t *testing.T) {
	fast, _ := coreParams(t)
	img := buildImage(t, computeProgram(5))
	cm := DefaultCostModel()
	p := NewProcess(1, img, &cm, 1, nil)
	for i := 0; i < 10000 && !p.Exited(); i++ {
		r := p.Step(fast, 0, 4096)
		if r.Cycles <= 0 {
			t.Fatal("step consumed no cycles")
		}
	}
	if !p.Exited() {
		t.Fatal("small program did not exit in 10000 steps")
	}
}

// recordingHook captures mark events.
type recordingHook struct {
	marks []int
	exits int
	mask  uint64
}

func (h *recordingHook) OnMark(p *Process, markID, coreID int) MarkAction {
	h.marks = append(h.marks, markID)
	return MarkAction{Mask: h.mask}
}
func (h *recordingHook) OnExit(p *Process) { h.exits++ }

// instrumentedImage builds a two-phase program with marks.
func instrumentedImage(t *testing.T) *Image {
	t.Helper()
	b := prog.NewBuilder("phased")
	main := b.Proc("main")
	main.Loop(20, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{IntALU: 30})
	})
	main.Loop(20, func(pb *prog.ProcBuilder) {
		pb.Straight(prog.BlockMix{Load: 20, WorkingSetKB: 128 * 1024, Locality: 0.3})
	})
	main.Ret()
	p := b.MustBuild()
	graphs, err := cfg.BuildAll(p)
	if err != nil {
		t.Fatal(err)
	}
	cg := cfg.BuildCallGraph(p, graphs)
	ty := &phase.Typing{K: 2, Types: map[phase.BlockKey]phase.Type{}}
	for pi, g := range graphs {
		for _, blk := range g.Blocks {
			if blk.Kind != cfg.KindNormal || blk.NumInstrs() < 10 {
				continue
			}
			if blk.Mix().MemOps() > 0 {
				ty.Types[phase.BlockKey{Proc: pi, Block: blk.ID}] = 1
			} else {
				ty.Types[phase.BlockKey{Proc: pi, Block: blk.ID}] = 0
			}
		}
	}
	sum := summarize.SummarizeLoops(p, graphs, cg, ty, summarize.DefaultWeights())
	plan, err := transition.ComputePlan(p, graphs, cg, ty, sum,
		transition.Params{Technique: transition.Loop, MinSize: 10, PropagateThroughUntyped: true})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := instrument.ApplyWithGraphs(p, plan, graphs)
	if err != nil {
		t.Fatal(err)
	}
	img, err := NewImage(bin.Prog, bin, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if img.NumMarks() == 0 {
		t.Fatal("fixture produced no marks")
	}
	return img
}

func TestMarksInvokeHook(t *testing.T) {
	fast, _ := coreParams(t)
	img := instrumentedImage(t)
	cm := DefaultCostModel()
	hook := &recordingHook{}
	p := NewProcess(1, img, &cm, 5, hook)
	p.RunIsolated(fast, 0, 4096, 0)
	if len(hook.marks) == 0 {
		t.Fatal("hook never invoked")
	}
	if hook.exits != 1 {
		t.Errorf("exit hook fired %d times, want 1", hook.exits)
	}
	if p.MarksExecuted != uint64(len(hook.marks)) {
		t.Errorf("MarksExecuted = %d, hook saw %d", p.MarksExecuted, len(hook.marks))
	}
	for _, id := range hook.marks {
		if id < 0 || id >= img.NumMarks() {
			t.Errorf("invalid mark ID %d", id)
		}
	}
}

func TestMarkRequestsPropagate(t *testing.T) {
	fast, _ := coreParams(t)
	img := instrumentedImage(t)
	cm := DefaultCostModel()
	hook := &recordingHook{mask: 0b10}
	p := NewProcess(1, img, &cm, 5, hook)
	sawMask := false
	for !p.Exited() {
		r := p.Step(fast, 0, 4096)
		if r.WantMask == 0b10 {
			sawMask = true
		}
	}
	if !sawMask {
		t.Error("mark mask request never surfaced in StepResult")
	}
}

func TestMarkCostCharged(t *testing.T) {
	fast, _ := coreParams(t)
	img := instrumentedImage(t)
	cm := DefaultCostModel()
	// Same program, no hook: marks still cost cycles and instructions.
	p := NewProcess(1, img, &cm, 5, nil)
	p.RunIsolated(fast, 0, 4096, 0)
	if p.MarksExecuted == 0 {
		t.Fatal("no marks executed")
	}
	if p.Counters.Instructions < p.MarksExecuted*uint64(cm.MarkInstrs) {
		t.Error("mark instructions not reflected in counters")
	}
}

func TestCacheShareAffectsCycles(t *testing.T) {
	fast, _ := coreParams(t)
	img := buildImage(t, memoryProgram(300))
	cm := DefaultCostModel()
	pFull := NewProcess(1, img, &cm, 9, nil)
	pFull.RunIsolated(fast, 0, 4096, 0)
	pHalf := NewProcess(2, img, &cm, 9, nil)
	pHalf.RunIsolated(fast, 0, 2048, 0)
	if pHalf.Counters.Cycles <= pFull.Counters.Cycles {
		t.Errorf("halved cache share did not increase cycles: %d vs %d",
			pHalf.Counters.Cycles, pFull.Counters.Cycles)
	}
}

func TestSyscallCost(t *testing.T) {
	fast, _ := coreParams(t)
	b := prog.NewBuilder("sys")
	b.Proc("main").Straight(prog.BlockMix{IntALU: 1}).Syscall().Ret()
	img := buildImage(t, b.MustBuild())
	cm := DefaultCostModel()
	p := NewProcess(1, img, &cm, 1, nil)
	p.RunIsolated(fast, 0, 4096, 0)
	if p.Counters.Cycles < uint64(cm.SyscallCycles) {
		t.Errorf("cycles %d do not include syscall cost %g", p.Counters.Cycles, cm.SyscallCycles)
	}
}

func TestNewImageRejectsForeignBinary(t *testing.T) {
	p1 := computeProgram(5)
	p2 := computeProgram(5)
	bin := &instrument.Binary{Prog: p2}
	if _, err := NewImage(p1, bin, DefaultCostModel()); err == nil {
		t.Error("NewImage accepted a binary wrapping a different program")
	}
}

func TestNewImageRejectsInvalidProgram(t *testing.T) {
	bad := &prog.Program{Name: "bad", Procs: []*prog.Procedure{{
		Name:   "main",
		Instrs: []isa.Instruction{{Op: isa.IntALU}},
	}}}
	if _, err := NewImage(bad, nil, DefaultCostModel()); err == nil {
		t.Error("NewImage accepted invalid program")
	}
}

func TestRunIsolatedBounded(t *testing.T) {
	fast, _ := coreParams(t)
	// Infinite loop: branch back with probability 1.
	p := &prog.Program{Name: "inf", Procs: []*prog.Procedure{{
		Name: "main",
		Instrs: []isa.Instruction{
			{Op: isa.IntALU},
			{Op: isa.Branch, Target: 0, TakenProb: 1},
			{Op: isa.Ret},
		},
	}}}
	img := buildImage(t, p)
	cm := DefaultCostModel()
	proc := NewProcess(1, img, &cm, 1, nil)
	cycles := proc.RunIsolated(fast, 0, 4096, 10000)
	if proc.Exited() {
		t.Error("infinite loop exited")
	}
	if cycles < 10000 {
		t.Errorf("bounded run stopped at %d cycles, want >= 10000", cycles)
	}
}
