package exec

import (
	"phasetune/internal/ledger"
	"phasetune/internal/perfcnt"
	"phasetune/internal/rng"
)

// MarkAction is what the tuning runtime asks for at a phase mark.
type MarkAction struct {
	// Mask, when non-zero, is the affinity mask the process requests
	// (the simulated sched_setaffinity call).
	Mask uint64
}

// MarkHook receives phase-mark events. The kernel installs the per-process
// tuning runtime here; overhead-measurement modes install cheaper hooks.
type MarkHook interface {
	// OnMark fires when the process executes the phase mark markID on core
	// coreID. Counter state is readable through p.Counters.
	OnMark(p *Process, markID int, coreID int) MarkAction
	// OnExit fires when the process terminates, so held resources (counter
	// event sets) can be released.
	OnExit(p *Process)
}

// QuantumHook is an optional extension of MarkHook: the kernel invokes it at
// the end of every scheduling quantum. The tuning runtime uses it to bound
// monitoring windows — a long code section between two phase marks contains
// many representative sub-sections, so a sample can be closed (and the next
// core type probed) without waiting for the next mark. This is the "simple
// feedback mechanism" extension the paper sketches in §VI-B.
type QuantumHook interface {
	MarkHook
	// OnQuantum fires after a scheduling quantum on core coreID; a non-zero
	// returned mask requests an affinity change, like a mark would.
	OnQuantum(p *Process, coreID int) MarkAction
}

// frame is a call-stack entry: where to resume in the caller.
type frame struct {
	proc, block int32
}

// StepResult reports one basic-block execution.
type StepResult struct {
	// Cycles consumed by the block (including mark payloads).
	Cycles int64
	// Exited reports program termination.
	Exited bool
	// WantMask, when non-zero, is an affinity-change request issued by a
	// phase mark in this block.
	WantMask uint64
}

// Process is one executing instance of an image.
type Process struct {
	// PID is the kernel-assigned process ID.
	PID int
	// Img is the executed image (shared, immutable).
	Img *Image
	// Counters is the virtualized performance-counter state.
	Counters perfcnt.Counters
	// Hook receives phase-mark events; nil disables mark processing beyond
	// cost accounting.
	Hook MarkHook
	// Work, when non-nil, accumulates per-step cycle attribution for the
	// run's ledger. The interpreter only writes to it — attribution never
	// feeds back into execution, so an attached Work cannot perturb a run.
	Work *ledger.Work

	cm   *CostModel
	rand *rng.Source

	curProc, curBlock int32
	stack             []frame
	exited            bool
	// loopCounts holds per-block counted-branch progress, allocated lazily
	// per procedure.
	loopCounts [][]int32
	// memo, when non-nil, holds segment-memoization state: incremental
	// hashes over the interpreter state and the active chunk recorder.
	// Enabled by the kernel at spawn when a run carries a SegmentMemo.
	memo *memoState

	// MarksExecuted counts dynamic phase-mark executions (diagnostics and
	// the time-overhead experiment).
	MarksExecuted uint64
}

// NewProcess creates a process at the image entry point. The seed drives
// branch outcomes, making every execution deterministic.
func NewProcess(pid int, img *Image, cm *CostModel, seed uint64, hook MarkHook) *Process {
	return &Process{
		PID:      pid,
		Img:      img,
		Hook:     hook,
		cm:       cm,
		rand:     rng.New(seed),
		curProc:  img.entry,
		curBlock: 0,
		stack:    make([]frame, 0, 64),
	}
}

// Exited reports whether the program has terminated.
func (p *Process) Exited() bool { return p.exited }

// SetSpilled records whether the placement engine currently holds the
// process off its chosen core type, so the ledger can charge subsequent
// asymmetry loss to the capacity-spill category. A no-op without a ledger.
func (p *Process) SetSpilled(s bool) {
	if p.Work != nil {
		p.Work.SetSpilled(s)
	}
}

// bodyCycles prices one execution of a block's body on a core with the
// given cache share. It is the single source of truth for block cost: the
// plain interpreter calls it per step and the segment memo's per-lane cost
// tables are built from it, so memoized and unmemoized runs price every
// block identically by construction. Products feeding additions are
// explicitly converted so the compiler cannot contract them into FMAs —
// the cross-architecture half of the determinism contract (DESIGN.md §13).
func bodyCycles(info *blockInfo, core *CoreParams, syscallCycles, shareKB float64) int64 {
	cycles := info.baseCycles
	if info.l1MissRefs > 0 {
		miss := info.profile.MissRatio(shareKB)
		cycles += float64(info.l1MissRefs * (core.L2HitCycles + float64(miss*core.MemCycles)))
	}
	if info.syscall {
		cycles += syscallCycles
	}
	ic := int64(cycles)
	if ic < 1 && info.instrs > 0 {
		ic = 1
	}
	return ic
}

// bodyIdealPs prices the block's fastest-clock counterfactual for the cycle
// ledger: the DRAM portion is wall-clock fixed (MemCycles ∝ frequency,
// PsPerCycle ∝ 1/frequency), so only the compute portion is repriced at the
// fastest clock. Truncated to integer picoseconds per block so any grouping
// of steps sums to the same total (the memo's identity contract).
func bodyIdealPs(info *blockInfo, core *CoreParams, ic int64, shareKB float64, fastPs int64) int64 {
	var memCycles float64
	if info.l1MissRefs > 0 {
		miss := info.profile.MissRatio(shareKB)
		memCycles = float64(info.l1MissRefs * float64(miss*core.MemCycles))
	}
	comp := float64(ic) - memCycles
	if comp < 0 {
		comp = 0
	}
	return int64(float64(comp*float64(fastPs)) + float64(memCycles*float64(core.PsPerCycle)))
}

// execMarks runs the phase marks at the top of a block: counter and ledger
// charges plus the tuning-runtime hook. Marks are observer boundaries — the
// memo never records across them, so they always execute natively.
func (p *Process) execMarks(info *blockInfo, core *CoreParams, coreID int, res *StepResult) {
	for _, mid := range info.markIDs {
		p.Counters.Add(uint64(p.cm.MarkInstrs), uint64(p.cm.MarkCycles))
		res.Cycles += p.cm.MarkCycles
		p.MarksExecuted++
		if p.Work != nil {
			// The mark opens a phase: attribute the mark payload and the
			// block body that follows to the entered phase.
			p.Work.SetPhase(int(p.Img.MarkType(int(mid))))
			p.Work.AddMark(p.cm.MarkCycles * core.PsPerCycle)
		}
		if p.Hook != nil {
			act := p.Hook.OnMark(p, int(mid), coreID)
			if act.Mask != 0 {
				res.WantMask = act.Mask
			}
		}
	}
}

// Step executes the current basic block on a core with the given parameters
// and effective cache share, advances control flow, and returns the cost.
// Step must not be called after the process has exited.
func (p *Process) Step(core *CoreParams, coreID int, shareKB float64) StepResult {
	info := &p.Img.blocks[p.curProc][p.curBlock]
	var res StepResult

	// Phase marks run first: they sit at the top of the block.
	if len(info.markIDs) > 0 {
		p.execMarks(info, core, coreID, &res)
	}

	// Block body cost.
	ic := bodyCycles(info, core, p.cm.SyscallCycles, shareKB)
	if p.Work != nil {
		p.Work.Add(ic*core.PsPerCycle, bodyIdealPs(info, core, ic, shareKB, p.Work.FastPs()))
	}
	p.Counters.Add(uint64(info.instrs), uint64(ic))
	if info.memRefs > 0 {
		p.Counters.AddMem(uint64(info.memRefs))
	}
	res.Cycles += ic

	p.advanceControl(info, &res)
	return res
}

// advanceControl moves the program counter past the current block,
// maintaining the memo's incremental state hashes when enabled.
func (p *Process) advanceControl(info *blockInfo, res *StepResult) {
	switch info.kind {
	case termFall:
		p.curBlock = info.fall
	case termBranch:
		if info.tripCount > 0 {
			// Counted loop: taken tripCount-1 consecutive times, then fall
			// through once; the counter then resets for re-entry.
			proc, blk := p.curProc, p.curBlock
			c := p.loopCounter()
			old := *c
			*c++
			if *c < info.tripCount {
				p.curBlock = info.taken
			} else {
				*c = 0
				p.curBlock = info.fall
			}
			if p.memo != nil {
				p.memo.noteLoopWrite(proc, blk, old, *c)
			}
		} else if p.rand.Float64() < info.takenProb {
			p.curBlock = info.taken
		} else {
			p.curBlock = info.fall
		}
	case termCall:
		if p.memo != nil {
			p.memo.stackHash ^= frameHash(len(p.stack), p.curProc, info.fall)
		}
		p.stack = append(p.stack, frame{proc: p.curProc, block: info.fall})
		p.curProc = info.callee
		p.curBlock = 0
	case termRet:
		if len(p.stack) == 0 {
			p.exited = true
			res.Exited = true
			if p.Hook != nil {
				p.Hook.OnExit(p)
			}
			return
		}
		top := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		if p.memo != nil {
			p.memo.stackHash ^= frameHash(len(p.stack), top.proc, top.block)
		}
		p.curProc = top.proc
		p.curBlock = top.block
	}
}

// loopCounter returns the counted-branch counter cell for the current block.
func (p *Process) loopCounter() *int32 {
	return p.loopCell(p.curProc, p.curBlock)
}

// loopCell returns (allocating lazily) the loop-counter cell for a block.
func (p *Process) loopCell(proc, block int32) *int32 {
	if p.loopCounts == nil {
		p.loopCounts = make([][]int32, len(p.Img.blocks))
	}
	if p.loopCounts[proc] == nil {
		p.loopCounts[proc] = make([]int32, len(p.Img.blocks[proc]))
	}
	return &p.loopCounts[proc][block]
}

// RunIsolated executes the process to completion on a single core with a
// fixed cache share, returning total cycles. It is used for isolation
// timings (fairness metrics need per-process isolation runtimes) and tests.
// maxCycles bounds runaway programs (0 means no bound).
func (p *Process) RunIsolated(core *CoreParams, coreID int, shareKB float64, maxCycles int64) (cycles int64) {
	for !p.exited {
		r := p.Step(core, coreID, shareKB)
		cycles += r.Cycles
		if maxCycles > 0 && cycles >= maxCycles {
			break
		}
	}
	return cycles
}
