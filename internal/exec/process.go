package exec

import (
	"phasetune/internal/ledger"
	"phasetune/internal/perfcnt"
	"phasetune/internal/rng"
)

// MarkAction is what the tuning runtime asks for at a phase mark.
type MarkAction struct {
	// Mask, when non-zero, is the affinity mask the process requests
	// (the simulated sched_setaffinity call).
	Mask uint64
}

// MarkHook receives phase-mark events. The kernel installs the per-process
// tuning runtime here; overhead-measurement modes install cheaper hooks.
type MarkHook interface {
	// OnMark fires when the process executes the phase mark markID on core
	// coreID. Counter state is readable through p.Counters.
	OnMark(p *Process, markID int, coreID int) MarkAction
	// OnExit fires when the process terminates, so held resources (counter
	// event sets) can be released.
	OnExit(p *Process)
}

// QuantumHook is an optional extension of MarkHook: the kernel invokes it at
// the end of every scheduling quantum. The tuning runtime uses it to bound
// monitoring windows — a long code section between two phase marks contains
// many representative sub-sections, so a sample can be closed (and the next
// core type probed) without waiting for the next mark. This is the "simple
// feedback mechanism" extension the paper sketches in §VI-B.
type QuantumHook interface {
	MarkHook
	// OnQuantum fires after a scheduling quantum on core coreID; a non-zero
	// returned mask requests an affinity change, like a mark would.
	OnQuantum(p *Process, coreID int) MarkAction
}

// frame is a call-stack entry: where to resume in the caller.
type frame struct {
	proc, block int32
}

// StepResult reports one basic-block execution.
type StepResult struct {
	// Cycles consumed by the block (including mark payloads).
	Cycles int64
	// Exited reports program termination.
	Exited bool
	// WantMask, when non-zero, is an affinity-change request issued by a
	// phase mark in this block.
	WantMask uint64
}

// Process is one executing instance of an image.
type Process struct {
	// PID is the kernel-assigned process ID.
	PID int
	// Img is the executed image (shared, immutable).
	Img *Image
	// Counters is the virtualized performance-counter state.
	Counters perfcnt.Counters
	// Hook receives phase-mark events; nil disables mark processing beyond
	// cost accounting.
	Hook MarkHook
	// Work, when non-nil, accumulates per-step cycle attribution for the
	// run's ledger. The interpreter only writes to it — attribution never
	// feeds back into execution, so an attached Work cannot perturb a run.
	Work *ledger.Work

	cm   *CostModel
	rand *rng.Source

	curProc, curBlock int32
	stack             []frame
	exited            bool
	// loopCounts holds per-block counted-branch progress, allocated lazily
	// per procedure.
	loopCounts [][]int32

	// MarksExecuted counts dynamic phase-mark executions (diagnostics and
	// the time-overhead experiment).
	MarksExecuted uint64
}

// NewProcess creates a process at the image entry point. The seed drives
// branch outcomes, making every execution deterministic.
func NewProcess(pid int, img *Image, cm *CostModel, seed uint64, hook MarkHook) *Process {
	return &Process{
		PID:      pid,
		Img:      img,
		Hook:     hook,
		cm:       cm,
		rand:     rng.New(seed),
		curProc:  img.entry,
		curBlock: 0,
		stack:    make([]frame, 0, 64),
	}
}

// Exited reports whether the program has terminated.
func (p *Process) Exited() bool { return p.exited }

// SetSpilled records whether the placement engine currently holds the
// process off its chosen core type, so the ledger can charge subsequent
// asymmetry loss to the capacity-spill category. A no-op without a ledger.
func (p *Process) SetSpilled(s bool) {
	if p.Work != nil {
		p.Work.SetSpilled(s)
	}
}

// Step executes the current basic block on a core with the given parameters
// and effective cache share, advances control flow, and returns the cost.
// Step must not be called after the process has exited.
func (p *Process) Step(core *CoreParams, coreID int, shareKB float64) StepResult {
	info := &p.Img.blocks[p.curProc][p.curBlock]
	var res StepResult

	// Phase marks run first: they sit at the top of the block.
	if len(info.markIDs) > 0 {
		for _, mid := range info.markIDs {
			p.Counters.Add(uint64(p.cm.MarkInstrs), uint64(p.cm.MarkCycles))
			res.Cycles += p.cm.MarkCycles
			p.MarksExecuted++
			if p.Work != nil {
				// The mark opens a phase: attribute the mark payload and the
				// block body that follows to the entered phase.
				p.Work.SetPhase(int(p.Img.MarkType(int(mid))))
				p.Work.AddMark(p.cm.MarkCycles * core.PsPerCycle)
			}
			if p.Hook != nil {
				act := p.Hook.OnMark(p, int(mid), coreID)
				if act.Mask != 0 {
					res.WantMask = act.Mask
				}
			}
		}
	}

	// Block body cost.
	cycles := info.baseCycles
	var memCycles float64
	if info.l1MissRefs > 0 {
		miss := info.profile.MissRatio(shareKB)
		cycles += info.l1MissRefs * (core.L2HitCycles + miss*core.MemCycles)
		if p.Work != nil {
			memCycles = info.l1MissRefs * miss * core.MemCycles
		}
	}
	if info.syscall {
		cycles += p.cm.SyscallCycles
	}
	ic := int64(cycles)
	if ic < 1 && info.instrs > 0 {
		ic = 1
	}
	if p.Work != nil {
		// Ledger attribution: the DRAM portion of the block is wall-clock
		// fixed (MemCycles ∝ frequency, PsPerCycle ∝ 1/frequency), so the
		// fastest-clock counterfactual reprices only the compute portion.
		comp := float64(ic) - memCycles
		if comp < 0 {
			comp = 0
		}
		p.Work.Add(ic*core.PsPerCycle, comp*float64(p.Work.FastPs())+memCycles*float64(core.PsPerCycle))
	}
	p.Counters.Add(uint64(info.instrs), uint64(ic))
	if info.memRefs > 0 {
		p.Counters.AddMem(uint64(info.memRefs))
	}
	res.Cycles += ic

	// Control flow.
	switch info.kind {
	case termFall:
		p.curBlock = info.fall
	case termBranch:
		if info.tripCount > 0 {
			// Counted loop: taken tripCount-1 consecutive times, then fall
			// through once; the counter then resets for re-entry.
			c := p.loopCounter()
			*c++
			if *c < info.tripCount {
				p.curBlock = info.taken
			} else {
				*c = 0
				p.curBlock = info.fall
			}
		} else if p.rand.Float64() < info.takenProb {
			p.curBlock = info.taken
		} else {
			p.curBlock = info.fall
		}
	case termCall:
		p.stack = append(p.stack, frame{proc: p.curProc, block: info.fall})
		p.curProc = info.callee
		p.curBlock = 0
	case termRet:
		if len(p.stack) == 0 {
			p.exited = true
			res.Exited = true
			if p.Hook != nil {
				p.Hook.OnExit(p)
			}
			return res
		}
		top := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		p.curProc = top.proc
		p.curBlock = top.block
	}
	return res
}

// loopCounter returns the counted-branch counter cell for the current block.
func (p *Process) loopCounter() *int32 {
	if p.loopCounts == nil {
		p.loopCounts = make([][]int32, len(p.Img.blocks))
	}
	if p.loopCounts[p.curProc] == nil {
		p.loopCounts[p.curProc] = make([]int32, len(p.Img.blocks[p.curProc]))
	}
	return &p.loopCounts[p.curProc][p.curBlock]
}

// RunIsolated executes the process to completion on a single core with a
// fixed cache share, returning total cycles. It is used for isolation
// timings (fairness metrics need per-process isolation runtimes) and tests.
// maxCycles bounds runaway programs (0 means no bound).
func (p *Process) RunIsolated(core *CoreParams, coreID int, shareKB float64, maxCycles int64) (cycles int64) {
	for !p.exited {
		r := p.Step(core, coreID, shareKB)
		cycles += r.Cycles
		if maxCycles > 0 && cycles >= maxCycles {
			break
		}
	}
	return cycles
}
