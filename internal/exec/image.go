package exec

import (
	"fmt"

	"phasetune/internal/cfg"
	"phasetune/internal/instrument"
	"phasetune/internal/isa"
	"phasetune/internal/phase"
	"phasetune/internal/prog"
	"phasetune/internal/reuse"
)

// termKind classifies how a block transfers control.
type termKind uint8

const (
	termFall termKind = iota // unconditional fallthrough (or jump)
	termBranch
	termCall
	termRet
)

// blockInfo is the interpreter's precomputed view of one basic block.
type blockInfo struct {
	// baseCycles is the core-type-independent pipeline cost of the block's
	// instructions (per-class CPI summed), excluding memory stalls.
	baseCycles float64
	// instrs is the retired-instruction count (phase marks excluded; they
	// are charged via CostModel.MarkInstrs).
	instrs int64
	// memRefs is the retired memory-reference count per execution.
	memRefs int64
	// l1MissRefs is the expected number of references per execution that
	// miss the private L1 and reach the shared cache.
	l1MissRefs float64
	// profile is the block's aggregated reuse profile.
	profile reuse.Profile
	// markIDs lists phase marks executed at the top of this block, in order.
	markIDs []int32
	// syscall marks syscall special nodes (extra fixed cost).
	syscall bool

	kind      termKind
	takenProb float64
	tripCount int32 // >0: counted loop back edge (taken tripCount-1 times)
	taken     int32 // block ID of taken successor
	fall      int32 // block ID of fallthrough successor (-1 none: ret/exit)
	callee    int32 // procedure index for termCall
}

// Image is an executable program image: the (optionally instrumented)
// program plus everything the interpreter precomputes. Images are immutable
// after construction and shared by all processes executing the same binary.
type Image struct {
	// Name is the program name.
	Name string
	// Prog is the executed program.
	Prog *prog.Program
	// Marks is the mark table (empty for uninstrumented images).
	Marks []instrument.Mark
	// Graphs are the CFGs of Prog.
	Graphs []*cfg.Graph

	blocks [][]blockInfo
	entry  int32
	memSig MemSig
}

// MemSig is an image's aggregate shared-cache pressure signature: the
// statically estimated density of references reaching the shared L2 and
// the reference-weighted reuse profile behind them. The placement engine's
// contention pricing (place.MemStats) consumes it to project the marginal
// stall of cache-group crowding.
//
// The aggregate is instruction-weighted over static blocks, not dynamic
// executions: loop-heavy phase bodies and cold utility code weigh by their
// static instruction counts. That dilutes L2RefsPerInstr for binaries with
// large cold sections, but the profile — weighted by memory references,
// which cold code barely has — stays phase-dominated, and the pricing it
// feeds is relative (crowded share vs. solo share), so the dilution shifts
// magnitudes without reordering candidates. A per-phase refinement (the
// phase-signature library of PAPERS.md's phase-distance mapping, or real
// L2 miss counters) would sharpen it; the oracle already computes the
// per-phase version from the same block data (online.OracleDecisions).
type MemSig struct {
	// L2RefsPerInstr is the expected references per retired instruction
	// that miss the private L1 and reach the shared cache.
	L2RefsPerInstr float64
	// Profile is the reference-weighted aggregate reuse profile.
	Profile reuse.Profile
}

// MemSignature returns the image's aggregate shared-cache signature,
// precomputed at image build.
func (img *Image) MemSignature() MemSig { return img.memSig }

// NewImage precomputes an image for execution. bin may be nil to execute an
// uninstrumented program; otherwise bin.Prog must equal p.
func NewImage(p *prog.Program, bin *instrument.Binary, cm CostModel) (*Image, error) {
	if bin != nil && bin.Prog != p {
		return nil, fmt.Errorf("exec: binary does not wrap the given program")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	graphs, err := cfg.BuildAll(p)
	if err != nil {
		return nil, err
	}
	img := &Image{
		Name:   p.Name,
		Prog:   p,
		Graphs: graphs,
		blocks: make([][]blockInfo, len(graphs)),
		entry:  int32(p.Entry),
	}
	if bin != nil {
		img.Marks = bin.Marks
	}
	for pi, g := range graphs {
		infos := make([]blockInfo, len(g.Blocks))
		for bi, b := range g.Blocks {
			info, err := summarizeBlock(b, g, cm)
			if err != nil {
				return nil, fmt.Errorf("exec: %s/%s block %d: %w", p.Name, g.ProcName, bi, err)
			}
			infos[bi] = info
		}
		img.blocks[pi] = infos
	}
	img.memSig = memSignature(img.blocks)
	return img, nil
}

// memSignature aggregates the per-block summaries into the image's MemSig.
func memSignature(blocks [][]blockInfo) MemSig {
	var sig MemSig
	var instrs int64
	var l1Miss float64
	refs := 0
	for _, infos := range blocks {
		for i := range infos {
			info := &infos[i]
			instrs += info.instrs
			l1Miss += info.l1MissRefs
			if info.memRefs > 0 {
				sig.Profile = reuse.Combine(sig.Profile, refs, info.profile, int(info.memRefs))
				refs += int(info.memRefs)
			}
		}
	}
	if instrs > 0 {
		sig.L2RefsPerInstr = l1Miss / float64(instrs)
	}
	return sig
}

// summarizeBlock precomputes the interpreter view of one block.
func summarizeBlock(b *cfg.Block, g *cfg.Graph, cm CostModel) (blockInfo, error) {
	info := blockInfo{fall: -1, taken: -1, callee: -1}
	var memRefs int
	for _, in := range b.Instrs {
		if in.Op == isa.PhaseMark {
			info.markIDs = append(info.markIDs, int32(in.MarkID))
			continue
		}
		info.baseCycles += cm.CPI[in.Op]
		info.instrs++
		if in.Op.IsMemory() {
			p := reuse.Profile{WorkingSetKB: in.Mem.WorkingSetKB, Locality: in.Mem.Locality}
			info.profile = reuse.Combine(info.profile, memRefs, p, 1)
			memRefs++
		}
		if in.Op == isa.Syscall {
			info.syscall = true
		}
	}
	info.memRefs = int64(memRefs)
	info.l1MissRefs = float64(memRefs) * info.profile.L1MissFraction()

	last := b.Instrs[len(b.Instrs)-1]
	switch last.Op {
	case isa.Branch:
		info.kind = termBranch
		info.takenProb = last.TakenProb
		info.tripCount = last.TripCount
		info.taken = int32(g.BlockOf(last.Target))
		if fall, ok := fallBlock(g, b); ok {
			info.fall = int32(fall)
		} else {
			return info, fmt.Errorf("branch block has no fallthrough")
		}
	case isa.Jump:
		info.kind = termFall
		info.fall = int32(g.BlockOf(last.Target))
	case isa.Call:
		info.kind = termCall
		info.callee = int32(last.Target)
		if fall, ok := fallBlock(g, b); ok {
			info.fall = int32(fall)
		} else {
			return info, fmt.Errorf("call block has no return-to block")
		}
	case isa.Ret:
		info.kind = termRet
	default:
		info.kind = termFall
		if fall, ok := fallBlock(g, b); ok {
			info.fall = int32(fall)
		} else {
			return info, fmt.Errorf("block falls off procedure end")
		}
	}
	return info, nil
}

// fallBlock returns the block starting at b.End.
func fallBlock(g *cfg.Graph, b *cfg.Block) (int, bool) {
	lastBlock := g.Blocks[len(g.Blocks)-1]
	if b.End > lastBlock.Start {
		return 0, false
	}
	return g.BlockOf(b.End), true
}

// BlockIPC computes a block's isolated IPC on a core type via the same cost
// arithmetic the interpreter uses (phase marks excluded). It is the static
// per-block performance estimate behind the typing-accuracy oracle and the
// oracle placement policy.
func BlockIPC(b *cfg.Block, par *CoreParams, cm CostModel, shareKB float64) float64 {
	cycles := 0.0
	instrs := 0
	memRefs := 0
	prof := phase.BlockProfile(b)
	for _, in := range b.Instrs {
		if in.Op == isa.PhaseMark {
			continue
		}
		cycles += cm.CPI[in.Op]
		instrs++
		if in.Op.IsMemory() {
			memRefs++
		}
	}
	l1miss := float64(memRefs) * prof.L1MissFraction()
	cycles += l1miss * (par.L2HitCycles + prof.MissRatio(shareKB)*par.MemCycles)
	if cycles <= 0 {
		return 0
	}
	return float64(instrs) / cycles
}

// MarkType returns the phase type of a mark ID.
func (img *Image) MarkType(id int) phase.Type {
	return img.Marks[id].Type
}

// NumMarks returns the image's mark count.
func (img *Image) NumMarks() int { return len(img.Marks) }

// StaticInstrs returns the static instruction count (diagnostics).
func (img *Image) StaticInstrs() int { return img.Prog.NumInstrs() }
