// Package exec interprets program images on simulated AMP cores, charging
// cycle-accurate-shaped costs per basic block and invoking the tuning
// runtime at phase marks.
//
// The timing model implements the asymmetry that drives the whole paper:
// all cores share one microarchitecture (identical per-class CPI), but
// memory stalls are priced in *nanoseconds*, so a miss costs
// latency_ns x frequency_GHz cycles — proportionally more cycles on the
// faster core. Compute-bound code therefore runs 1.5x faster on the 2.4 GHz
// cores at equal IPC, while memory-bound code shows *higher* IPC on the
// 1.6 GHz cores and gains almost nothing from the fast ones. IPC measured
// by the tuning runtime consequently identifies the core type a section
// wastes the fewest cycles on (paper §II-B).
package exec

import (
	"phasetune/internal/amp"
	"phasetune/internal/isa"
)

// CostModel fixes the microarchitectural constants shared by all cores.
type CostModel struct {
	// CPI is the base cycles-per-instruction per class, excluding memory
	// stall time for loads/stores (their CPI covers address generation and
	// L1 access only).
	CPI [isa.NumOpClasses]float64
	// L2HitCycles is the cost of an L1 miss served by the shared L2, in
	// cycles. The L2 is on-die and clocked with the core (underclocking the
	// core underclocks its caches), so the cost is the same cycle count on
	// every core type — cache-resident code shows no IPC asymmetry.
	L2HitCycles float64
	// MemLatencyNS is the latency of an access that misses the L2. DRAM is
	// off-chip with fixed wall-clock latency, so its cycle cost scales with
	// core frequency — the sole source of the IPC gap between core types.
	MemLatencyNS float64
	// MarkCycles is the execution cost of one phase mark's payload (saves,
	// table lookup, compare, restores). The paper's marks are tens of
	// instructions.
	MarkCycles int64
	// MarkInstrs is how many retired instructions a mark contributes; the
	// paper's throughput measurements "include the instructions inserted as
	// part of the phase marks" (§IV-C).
	MarkInstrs int64
	// SyscallCycles is the cost of a syscall special node.
	SyscallCycles float64
}

// DefaultCostModel returns constants loosely calibrated to the paper's
// Core 2 era: a 4-wide superscalar pipeline (sub-1 CPI for simple ops, so
// compute code reaches IPC 2-3 as on real hardware), a 14-cycle on-die L2,
// and ~200-cycle DRAM at 2.4 GHz (83 ns).
func DefaultCostModel() CostModel {
	cm := CostModel{
		L2HitCycles:   14,
		MemLatencyNS:  83,
		MarkCycles:    30,
		MarkInstrs:    14,
		SyscallCycles: 300,
	}
	cm.CPI[isa.IntALU] = 0.34
	cm.CPI[isa.IntMul] = 1
	cm.CPI[isa.IntDiv] = 8
	cm.CPI[isa.FPAdd] = 0.5
	cm.CPI[isa.FPMul] = 0.5
	cm.CPI[isa.FPDiv] = 10
	cm.CPI[isa.Load] = 0.5
	cm.CPI[isa.Store] = 0.5
	cm.CPI[isa.Branch] = 0.5
	cm.CPI[isa.Jump] = 0.34
	cm.CPI[isa.Call] = 1
	cm.CPI[isa.Ret] = 1
	cm.CPI[isa.Syscall] = 1
	cm.CPI[isa.Nop] = 0.25
	cm.CPI[isa.PhaseMark] = 0 // charged via MarkCycles
	return cm
}

// CoreParams is the per-core-type view of the cost model, precomputed for
// the interpreter's hot path.
type CoreParams struct {
	// Type is the core type ID.
	Type amp.CoreTypeID
	// CyclesPerSec is the scaled simulation clock.
	CyclesPerSec float64
	// PsPerCycle converts cycles to simulated picoseconds.
	PsPerCycle int64
	// L2HitCycles is the cycle cost of an L1 miss served by the L2 (core-
	// type independent: the L2 clocks with the core).
	L2HitCycles float64
	// MemCycles is the cycle cost of an L2 miss served by memory
	// (frequency-proportional: DRAM latency is fixed wall-clock time).
	MemCycles float64
}

// ParamsFor derives per-type parameters from the model and machine.
func ParamsFor(cm CostModel, m *amp.Machine) []CoreParams {
	out := make([]CoreParams, len(m.Types))
	for i, t := range m.Types {
		out[i] = CoreParams{
			Type:         amp.CoreTypeID(i),
			CyclesPerSec: t.CyclesPerSec,
			PsPerCycle:   t.PsPerCycle(),
			L2HitCycles:  cm.L2HitCycles,
			MemCycles:    cm.MemLatencyNS * t.FreqGHz,
		}
	}
	return out
}
