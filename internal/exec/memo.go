// Segment-outcome memoization. Campaign grids re-simulate the same code
// over and over: across a policy column most of a task's phase segments
// execute identically under different placements, so stepping them
// block-by-block every time is pure waste (ROADMAP item 4, paper §V's
// dependence on cheap large-grid ablations).
//
// A run of steps is a pure function of the interpreter state it starts
// from — (image, program counter, call stack, loop counters, rng stream
// position) — and of the pricing environment it runs under — (core-type
// parameters, effective cache share, syscall cost, fastest clock). The
// memo exploits exactly that: a *chunk* records the observable deltas of
// up to maxChunkSteps consecutive steps (cycles, instructions, memory
// references, integer ledger picoseconds) together with the end state, and
// replaying it is O(1) in the number of steps.
//
// The identity contract. Memoization must be invisible to every observer:
// marks, monitor windows, ledger charges, traces, and the scheduler's
// slice accounting. Chunks therefore split at every observer-visible
// boundary:
//
//   - phase marks never record (the tuning hook runs between two steps the
//     observer can distinguish), so a chunk never spans a mark;
//   - the exit step never records (OnExit is a hook);
//   - a slice boundary closes the open recording (the scheduler regains
//     control there);
//   - replay is refused unless the whole chunk fits the remaining slice
//     budget exactly as the unmemoized loop would have stepped it
//     (cyclesButLast < remaining ⇔ every step would have started).
//
// Within a chunk nothing is observable: counters and the ledger are plain
// integer sums, so one batched add equals the per-step adds it replaces,
// and the per-lane cost tables are built from the same bodyCycles /
// bodyIdealPs helpers the plain interpreter uses — memoized and
// unmemoized runs price every block identically by construction.
//
// Concurrency follows the ImageCache singleflight idiom: lanes and chunks
// are immutable once published, lookups take a read lock, and the first
// recorder to finish a chunk wins (a losing duplicate is discarded — both
// are correct by construction, so results never depend on the race).
package exec

import (
	"math"
	"sync"
	"sync/atomic"
)

// maxChunkSteps bounds one chunk. Longer chunks amortize the lookup better
// but are refused more often near slice boundaries; 256 steps is far past
// the point where the per-chunk overhead stops mattering.
const maxChunkSteps = 256

// DefaultMemoChunks is the default bound on cached chunks across all
// lanes (~tens of MB at typical chunk sizes). When full, the memo stops
// recording new chunks but keeps serving hits.
const DefaultMemoChunks = 1 << 18

// laneKey identifies a pricing environment: runs that agree on every field
// price every block identically and may share cached chunks. Images are
// compared by identity — the ImageCache already dedupes them by content,
// so identity equality is content equality within a process. The flip side:
// cross-run memo reuse requires the runs to draw images from one shared
// cache; runs that re-prepare their own images land in fresh lanes and
// record from scratch. Sessions, sweeps, and dist workers all pair the
// memo with a shared cache.
type laneKey struct {
	img         *Image
	par         CoreParams
	shareBits   uint64 // math.Float64bits of the effective cache share
	syscallBits uint64 // math.Float64bits of the cost model's syscall cost
	fastPs      int64  // fastest clock, prices the ledger counterfactual
}

// chunkKey identifies an interpreter state within a lane: the exact rng
// stream position (splitmix64 state is one word, so this dimension is
// collision-free) plus a hash of (program counter, call stack, loop
// counters). Replay additionally verifies the start position and stack
// depth stored in the chunk.
type chunkKey struct {
	pos uint64
	rng uint64
}

// loopWrite is one loop-counter cell's final value within a chunk.
type loopWrite struct {
	proc, block int32
	val         int32
}

// chunk is the recorded outcome of a run of steps: the observable deltas
// plus the end state to restore. Immutable once published.
type chunk struct {
	startProc, startBlock int32
	startStackLen         int32
	steps                 int32

	cycles        int64 // total body cycles of all steps
	cyclesButLast int64 // total excluding the final step (budget check)
	instrs        uint64
	memRefs       uint64
	idealPs       int64 // ledger fastest-clock counterfactual, integer sum

	endProc, endBlock int32
	endStack          []frame
	endStackHash      uint64
	endLoopHash       uint64
	endRng            uint64
	loopWrites        []loopWrite
}

// blockCost is one block's precomputed pricing under a lane. Building it
// once per lane also removes the per-step math.Exp from the native path.
type blockCost struct {
	ic       int64 // body cycles (identical to Step's truncation)
	actualPs int64 // ic × PsPerCycle
	idealPs  int64 // fastest-clock counterfactual picoseconds
}

// Lane is the per-pricing-environment view of the memo: the block cost
// tables plus the chunk store.
type Lane struct {
	memo    *SegmentMemo
	par     CoreParams
	shareKB float64
	cost    [][]blockCost

	mu     sync.RWMutex
	chunks map[chunkKey]*chunk
}

// lookup returns the cached chunk for a state key, or nil.
func (l *Lane) lookup(key chunkKey) *chunk {
	l.mu.RLock()
	c := l.chunks[key]
	l.mu.RUnlock()
	return c
}

// insert publishes a recorded chunk. First writer wins: concurrent
// recorders starting from the same state record byte-equivalent prefixes,
// so replay correctness never depends on which one lands.
func (l *Lane) insert(key chunkKey, c *chunk) {
	m := l.memo
	if m.entries.Load() >= m.limit {
		return
	}
	l.mu.Lock()
	if _, ok := l.chunks[key]; !ok {
		l.chunks[key] = c
		m.entries.Add(1)
		m.recordedSteps.Add(uint64(c.steps))
	}
	l.mu.Unlock()
}

// SegmentMemo is a shared store of memoized segment outcomes. Safe for
// concurrent use by every run of a sweep; a nil *SegmentMemo disables
// memoization entirely.
type SegmentMemo struct {
	limit   int64
	entries atomic.Int64

	hits          atomic.Uint64
	misses        atomic.Uint64
	replayedSteps atomic.Uint64
	recordedSteps atomic.Uint64

	mu    sync.RWMutex
	lanes map[laneKey]*Lane
}

// NewSegmentMemo creates a memo bounded to maxChunks cached chunks
// (DefaultMemoChunks when maxChunks <= 0).
func NewSegmentMemo(maxChunks int) *SegmentMemo {
	if maxChunks <= 0 {
		maxChunks = DefaultMemoChunks
	}
	return &SegmentMemo{limit: int64(maxChunks), lanes: map[laneKey]*Lane{}}
}

// MemoStats is a point-in-time snapshot of memo effectiveness.
type MemoStats struct {
	// Lanes and Chunks size the store.
	Lanes, Chunks int
	// Hits and Misses count chunk lookups during dispatch.
	Hits, Misses uint64
	// ReplayedSteps and RecordedSteps count interpreter steps served from
	// cache versus stepped while recording.
	ReplayedSteps, RecordedSteps uint64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s MemoStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the memo's counters.
func (m *SegmentMemo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	m.mu.RLock()
	lanes := len(m.lanes)
	m.mu.RUnlock()
	return MemoStats{
		Lanes:         lanes,
		Chunks:        int(m.entries.Load()),
		Hits:          m.hits.Load(),
		Misses:        m.misses.Load(),
		ReplayedSteps: m.replayedSteps.Load(),
		RecordedSteps: m.recordedSteps.Load(),
	}
}

// LaneFor resolves (building on first use) the lane for a process's image
// under the given pricing environment. Called once per dispatch burst.
func (m *SegmentMemo) LaneFor(p *Process, par *CoreParams, shareKB float64, fastPs int64) *Lane {
	key := laneKey{
		img:         p.Img,
		par:         *par,
		shareBits:   math.Float64bits(shareKB),
		syscallBits: math.Float64bits(p.cm.SyscallCycles),
		fastPs:      fastPs,
	}
	m.mu.RLock()
	l := m.lanes[key]
	m.mu.RUnlock()
	if l != nil {
		return l
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if l = m.lanes[key]; l != nil {
		return l
	}
	l = &Lane{
		memo:    m,
		par:     *par,
		shareKB: shareKB,
		chunks:  map[chunkKey]*chunk{},
		cost:    make([][]blockCost, len(p.Img.blocks)),
	}
	for proc := range p.Img.blocks {
		row := make([]blockCost, len(p.Img.blocks[proc]))
		for b := range row {
			info := &p.Img.blocks[proc][b]
			ic := bodyCycles(info, par, p.cm.SyscallCycles, shareKB)
			row[b] = blockCost{
				ic:       ic,
				actualPs: ic * par.PsPerCycle,
				idealPs:  bodyIdealPs(info, par, ic, shareKB, fastPs),
			}
		}
		l.cost[proc] = row
	}
	m.lanes[key] = l
	return l
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const (
	hashGamma = 0x9e3779b97f4a7c15
	frameSeed = 0x8f51a2c4b3e6d970
	loopSeed  = 0x1d8e4f2a9c6b5e37
)

// frameHash hashes one call-stack frame at a given depth. Frames combine
// by XOR, so pushing and popping the same frame cancels exactly — the
// incremental stack hash.
func frameHash(depth int, proc, block int32) uint64 {
	k := uint64(uint32(proc))<<32 | uint64(uint32(block))
	return mix64(k + uint64(depth)*hashGamma + frameSeed)
}

// loopCellHash hashes one loop-counter cell holding a non-zero value.
// Zero-valued cells contribute nothing, so a lazily unallocated counter
// and an explicit zero hash identically.
func loopCellHash(proc, block, val int32) uint64 {
	k := uint64(uint32(proc))<<32 | uint64(uint32(block))
	return mix64(mix64(k+loopSeed) + uint64(uint32(val))*hashGamma)
}

// posHash folds the program counter and the state hashes into the chunk
// key's position word.
func posHash(proc, block int32, stackHash, loopHash uint64) uint64 {
	k := uint64(uint32(proc))<<32 | uint64(uint32(block))
	return mix64(k+hashGamma) ^ stackHash ^ loopHash
}

// memoState is a process's memoization side-state: incremental hashes
// summarizing the parts of the interpreter state the program counter does
// not (call stack, loop counters), plus the active chunk recorder.
type memoState struct {
	stackHash uint64
	loopHash  uint64
	rec       recorder
}

// recorder accumulates an in-progress chunk.
type recorder struct {
	active                bool
	lane                  *Lane
	key                   chunkKey
	startProc, startBlock int32
	startStackLen         int32
	steps                 int32
	cycles                int64
	lastCycles            int64
	idealPs               int64
	startInstrs           uint64
	startMemRefs          uint64
	touched               []loopWrite
}

// noteLoopWrite maintains the loop-counter hash across one cell update and
// feeds the recorder's touched set.
func (m *memoState) noteLoopWrite(proc, block, old, val int32) {
	if old != 0 {
		m.loopHash ^= loopCellHash(proc, block, old)
	}
	if val != 0 {
		m.loopHash ^= loopCellHash(proc, block, val)
	}
	if m.rec.active {
		m.rec.touched = append(m.rec.touched, loopWrite{proc: proc, block: block})
	}
}

// start arms the recorder at the current state (a lookup miss).
func (r *recorder) start(p *Process, lane *Lane, key chunkKey) {
	r.active = true
	r.lane = lane
	r.key = key
	r.startProc, r.startBlock = p.curProc, p.curBlock
	r.startStackLen = int32(len(p.stack))
	r.steps = 0
	r.cycles = 0
	r.lastCycles = 0
	r.idealPs = 0
	r.startInstrs = p.Counters.Instructions
	r.startMemRefs = p.Counters.MemRefs
	r.touched = r.touched[:0]
}

// finalize closes the active recording and publishes the chunk.
func (m *memoState) finalize(p *Process) {
	r := &m.rec
	r.active = false
	if r.steps == 0 {
		return
	}
	c := &chunk{
		startProc:     r.startProc,
		startBlock:    r.startBlock,
		startStackLen: r.startStackLen,
		steps:         r.steps,
		cycles:        r.cycles,
		cyclesButLast: r.cycles - r.lastCycles,
		instrs:        p.Counters.Instructions - r.startInstrs,
		memRefs:       p.Counters.MemRefs - r.startMemRefs,
		idealPs:       r.idealPs,
		endProc:       p.curProc,
		endBlock:      p.curBlock,
		endStack:      append([]frame(nil), p.stack...),
		endStackHash:  m.stackHash,
		endLoopHash:   m.loopHash,
		endRng:        p.rand.State(),
	}
	// Dedupe the touched loop cells and capture their final values.
	if len(r.touched) > 0 {
		c.loopWrites = make([]loopWrite, 0, len(r.touched))
	outer:
		for _, t := range r.touched {
			for _, w := range c.loopWrites {
				if w.proc == t.proc && w.block == t.block {
					continue outer
				}
			}
			c.loopWrites = append(c.loopWrites, loopWrite{
				proc: t.proc, block: t.block,
				val: p.loopCounts[t.proc][t.block],
			})
		}
	}
	r.lane.insert(r.key, c)
}

// EnableMemo arms segment memoization for this process. Must be called
// before the first step: the incremental hashes summarize the interpreter
// state from its initial (empty) configuration.
func (p *Process) EnableMemo() {
	if p.memo == nil {
		p.memo = &memoState{}
	}
}

// Advance attempts to replay a cached chunk at the current state under the
// given lane, returning the cycles consumed (0: no replay — the caller
// must take a native step). budget is the remaining slice budget; a chunk
// replays only if the unmemoized loop would have started every one of its
// steps (strict cyclesButLast < budget, matching `for used < slice`).
// A lookup miss arms the recorder, so the following native steps build the
// chunk that will serve this state next time.
func (p *Process) Advance(lane *Lane, budget int64) int64 {
	m := p.memo
	if m == nil || m.rec.active {
		return 0
	}
	info := &p.Img.blocks[p.curProc][p.curBlock]
	if len(info.markIDs) > 0 || (info.kind == termRet && len(p.stack) == 0) {
		// Observer boundary (mark hook / exit hook): always native.
		return 0
	}
	key := chunkKey{pos: posHash(p.curProc, p.curBlock, m.stackHash, m.loopHash), rng: p.rand.State()}
	c := lane.lookup(key)
	if c == nil {
		lane.memo.misses.Add(1)
		m.rec.start(p, lane, key)
		return 0
	}
	if c.startProc != p.curProc || c.startBlock != p.curBlock || int(c.startStackLen) != len(p.stack) {
		// ~128-bit key collision: vanishingly unlikely, but refuse rather
		// than corrupt the run.
		lane.memo.misses.Add(1)
		return 0
	}
	if c.cyclesButLast >= budget {
		return 0
	}
	p.replayChunk(lane, c)
	return c.cycles
}

// replayChunk applies a chunk's deltas and restores its end state.
func (p *Process) replayChunk(lane *Lane, c *chunk) {
	p.Counters.AddBatch(c.instrs, uint64(c.cycles), c.memRefs)
	if p.Work != nil {
		p.Work.Add(c.cycles*lane.par.PsPerCycle, c.idealPs)
	}
	for _, w := range c.loopWrites {
		*p.loopCell(w.proc, w.block) = w.val
	}
	p.stack = append(p.stack[:0], c.endStack...)
	p.curProc, p.curBlock = c.endProc, c.endBlock
	p.rand.SetState(c.endRng)
	p.memo.stackHash = c.endStackHash
	p.memo.loopHash = c.endLoopHash
	lane.memo.hits.Add(1)
	lane.memo.replayedSteps.Add(uint64(c.steps))
}

// StepLane is Step with the block cost read from the lane's precomputed
// tables (no per-step float math) and the chunk recorder attached. The
// kernel uses it for every step of a memoized run; results are identical
// to Step by construction (the tables are built from the same helpers).
func (p *Process) StepLane(lane *Lane, coreID int) StepResult {
	m := p.memo
	if m == nil {
		return p.Step(&lane.par, coreID, lane.shareKB)
	}
	info := &p.Img.blocks[p.curProc][p.curBlock]
	if m.rec.active && (len(info.markIDs) > 0 || (info.kind == termRet && len(p.stack) == 0)) {
		// Observer boundary: close the recording before executing it.
		m.finalize(p)
	}
	var res StepResult
	if len(info.markIDs) > 0 {
		p.execMarks(info, &lane.par, coreID, &res)
	}
	bc := &lane.cost[p.curProc][p.curBlock]
	if p.Work != nil {
		p.Work.Add(bc.actualPs, bc.idealPs)
	}
	p.Counters.Add(uint64(info.instrs), uint64(bc.ic))
	if info.memRefs > 0 {
		p.Counters.AddMem(uint64(info.memRefs))
	}
	res.Cycles += bc.ic

	p.advanceControl(info, &res)

	if m.rec.active {
		// The recording was closed above if this step carried a mark or
		// exited, so the whole step belongs to the chunk.
		m.rec.steps++
		m.rec.cycles += res.Cycles
		m.rec.lastCycles = res.Cycles
		m.rec.idealPs += bc.idealPs
		if m.rec.steps >= maxChunkSteps {
			m.finalize(p)
		}
	}
	return res
}

// EndSlice closes any recording in progress: a slice boundary is a point
// where the scheduler — an observer — regains control. The kernel calls it
// when a dispatch burst ends.
func (p *Process) EndSlice() {
	if p.memo != nil && p.memo.rec.active {
		p.memo.finalize(p)
	}
}
