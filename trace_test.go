package phasetune_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"phasetune"
)

// traceSpec is the serving run the tracing contract is pinned on: open
// arrivals, overcommit, and the hybrid policy — the configuration that
// exercises every emit site (dispatch, placement, windows, re-decisions,
// admission timers).
func traceSpec(machine *phasetune.Machine) phasetune.RunSpec {
	arr := phasetune.ServingArrivals(machine, phasetune.ArrivalPoisson, 1.2, 6)
	return phasetune.RunSpec{Arrivals: &arr, DurationSec: 8, Policy: phasetune.PolicyHybrid, Seed: 3}
}

func traceSession(machine *phasetune.Machine, tr *phasetune.Tracer) *phasetune.Session {
	return phasetune.NewSession(
		phasetune.WithMachine(machine),
		phasetune.WithOvercommit(phasetune.OvercommitConfig{Enabled: true}),
		phasetune.WithTrace(tr),
	)
}

// TestTracedRunByteIdenticalToUntraced is the tracing layer's load-bearing
// contract: attaching a tracer never perturbs the simulation. A traced
// serving run must produce a Result whose canonical encoding — the same
// bytes the dist fabric commits — is identical to the untraced run's, and
// the trace itself must be byte-stable across repeat runs.
func TestTracedRunByteIdenticalToUntraced(t *testing.T) {
	machine := phasetune.QuadAMP()
	spec := traceSpec(machine)

	plain, err := traceSession(machine, nil).RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	tr := phasetune.NewTracer()
	traced, err := traceSession(machine, tr).RunContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, plain), encode(t, traced)) {
		t.Error("traced run's Result differs from untraced run — tracing perturbed the simulation")
	}
	if tr.Len() == 0 {
		t.Fatal("tracer captured no events from a serving run")
	}

	// Same spec, fresh tracer: the exported trace is bit-identical.
	tr2 := phasetune.NewTracer()
	if _, err := traceSession(machine, tr2).RunContext(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	var j1, j2 bytes.Buffer
	if err := tr.WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := tr2.WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Error("two traced runs of the same spec exported different trace bytes")
	}
}

// TestTraceExportShape pins the acceptance shape of an exported serving
// trace: at least one lifetime span per task, at least one placement
// decision with its rationale attached, and the runnable-depth counter
// track.
func TestTraceExportShape(t *testing.T) {
	machine := phasetune.QuadAMP()
	tr := phasetune.NewTracer()
	res, err := traceSession(machine, tr).RunContext(context.Background(), traceSpec(machine))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}

	taskSpans, decides, counters := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.Cat == "task":
			taskSpans++
		case ev.Name == "decide" && ev.Ph == "i":
			decides++
			for _, key := range []string{"ipc", "choice", "delta"} {
				if _, ok := ev.Args[key]; !ok {
					t.Errorf("decide instant missing rationale field %q: %+v", key, ev.Args)
				}
			}
		case ev.Ph == "C" && ev.Name == "runnable":
			counters++
		}
	}
	if taskSpans < len(res.Tasks) {
		t.Errorf("%d task lifetime spans for %d tasks", taskSpans, len(res.Tasks))
	}
	if decides == 0 {
		t.Error("no placement-decision instants in a hybrid serving trace")
	}
	if counters == 0 {
		t.Error("no runnable-depth counter samples")
	}
}
